//! One connection's lifetime: the newline-delimited wire protocol engine
//! (DESIGN.md §6).
//!
//! The query plane is exactly the `store serve-file` line protocol — one
//! query per line, one reply line back, per-line errors never close the
//! connection — so the two front ends are byte-identical on the same input
//! (the CI smoke step diffs them). On top of it sits the admin plane:
//! upper-case verbs (`PING`, `INFO`, `STATS`, `RELOAD`, `QUIT`) that a
//! query file can never collide with, because query verbs are lower-case.
//!
//! Batching is adaptive: lines are parsed and buffered while more input is
//! already waiting in the read buffer, and the pending batch is evaluated
//! (through the shared [`WorkerPool`] for large batches) the moment the
//! client pauses — so an interactive `nc` session gets an answer per line
//! while a pipelined client gets amortized batches, without any flush
//! command in the protocol.

use std::io::{BufRead, BufReader, Read, Write};

use grepair_store::{error_reply, parse_query, GrepairError, Query, StoreRegistry};

use crate::pool::WorkerPool;

/// Wire protocol version, echoed by `INFO`. Bumped only for *breaking*
/// changes (a reply rendering change, a verb repurposed); new verbs and new
/// `INFO`/`STATS` fields are additive and do not bump it.
pub const PROTO_VERSION: u32 = 1;

/// Default cap on buffered-but-unanswered lines before a forced evaluation.
pub const DEFAULT_BATCH: usize = 1024;

/// Default cap on one request line, bytes. A line longer than this is
/// answered with an error and discarded — DoS defense, not a format limit.
pub const DEFAULT_MAX_LINE: usize = 64 * 1024;

/// Batches smaller than this are answered on the session thread itself:
/// below it, the channel round-trip to the pool costs more than the
/// queries.
const INLINE_BATCH: usize = 16;

/// Per-session tunables, shared by every connection of one server.
#[derive(Debug, Clone)]
pub struct SessionOpts {
    /// Evaluate the pending batch at this many lines even if the client
    /// keeps streaming.
    pub batch: usize,
    /// Maximum accepted line length in bytes.
    pub max_line: usize,
    /// What `RELOAD` without an argument reloads (the path the server was
    /// started from); `None` makes a bare `RELOAD` an error.
    pub reload_path: Option<String>,
}

impl Default for SessionOpts {
    fn default() -> Self {
        Self { batch: DEFAULT_BATCH, max_line: DEFAULT_MAX_LINE, reload_path: None }
    }
}

/// What one finished session did (for the server's connection log).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SessionSummary {
    /// Reply lines written (answers + error lines).
    pub served: u64,
    /// How many of those were error lines.
    pub errors: u64,
    /// Successful `RELOAD`s performed by this session.
    pub reloads: u64,
}

/// A buffered byte source that can tell whether more input is *already*
/// buffered — the signal the adaptive batcher uses to decide "evaluate now
/// or keep reading" without ever blocking on a peek.
pub trait LineSource: BufRead {
    /// True when at least one byte can be read without blocking.
    fn buffered(&self) -> bool;
}

impl<R: Read> LineSource for BufReader<R> {
    fn buffered(&self) -> bool {
        !self.buffer().is_empty()
    }
}

/// In-memory sources are "fully buffered" until exhausted (tests and the
/// offline path).
impl LineSource for &[u8] {
    fn buffered(&self) -> bool {
        !self.is_empty()
    }
}

/// One line-read outcome. Distinguishing the failure shapes matters: an
/// oversized line gets an error *reply* and the session continues; a
/// mid-line disconnect can't be replied to, so the session just ends
/// cleanly.
enum LineEvent {
    /// Clean EOF at a line boundary.
    Eof,
    /// A complete line (without its terminator) is in the buffer.
    Line,
    /// The line exceeded `max_line`; its remainder was consumed and
    /// discarded.
    Oversized,
    /// EOF in the middle of a line — the partial line is discarded.
    MidLineEof,
}

/// Read one `\n`-terminated line of at most `max` bytes into `buf`
/// (cleared first). Never reads past the terminating newline.
fn read_limited_line(
    reader: &mut impl LineSource,
    buf: &mut Vec<u8>,
    max: usize,
) -> std::io::Result<LineEvent> {
    buf.clear();
    // `take(max + 1)`: the extra byte distinguishes "exactly max bytes then
    // newline" (fine) from "longer than max" (oversized). Saturating: a
    // `--max-line usize::MAX` must mean "unlimited", not wrap to take(0).
    let read = reader.take((max as u64).saturating_add(1)).read_until(b'\n', buf)?;
    if read == 0 {
        return Ok(LineEvent::Eof);
    }
    if buf.last() == Some(&b'\n') {
        buf.pop();
        if buf.last() == Some(&b'\r') {
            buf.pop(); // tolerate CRLF clients (telnet, Windows nc)
        }
        return Ok(LineEvent::Line);
    }
    if read <= max {
        return Ok(LineEvent::MidLineEof);
    }
    // Oversized: swallow the rest of the line so the *next* line parses.
    let mut rest = Vec::new();
    loop {
        rest.clear();
        let n = reader.take(8192).read_until(b'\n', &mut rest)?;
        if n == 0 || rest.last() == Some(&b'\n') {
            return Ok(LineEvent::Oversized);
        }
    }
}

/// The admin plane: upper-case verbs, handled out-of-band of the query
/// batch (but only after the pending batch is answered, so replies stay in
/// request order).
enum Admin {
    Ping,
    Info,
    Stats,
    Reload(Option<String>),
    Quit,
}

/// `Some` iff the line's first token is an admin verb. Malformed admin
/// lines (trailing tokens) are still admin — they get an admin error reply,
/// not a query parse error.
fn parse_admin(line: &str) -> Option<Result<Admin, String>> {
    let mut it = line.split_whitespace();
    let verb = it.next()?;
    let no_args = |admin: Admin, mut rest: std::str::SplitWhitespace<'_>| match rest.next() {
        None => Ok(admin),
        Some(extra) => Err(format!("unexpected trailing token {extra:?}")),
    };
    Some(match verb {
        "PING" => no_args(Admin::Ping, it),
        "INFO" => no_args(Admin::Info, it),
        "STATS" => no_args(Admin::Stats, it),
        "QUIT" => no_args(Admin::Quit, it),
        "RELOAD" => {
            let path = it.next().map(str::to_string);
            match it.next() {
                None => Ok(Admin::Reload(path)),
                Some(extra) => Err(format!("unexpected trailing token {extra:?}")),
            }
        }
        _ => return None,
    })
}

/// Serve one connection (or any line stream) to completion.
///
/// `reader`/`writer` are the two halves of the connection; the function
/// returns when the client disconnects or sends `QUIT`. Every failure mode
/// below the transport — unparsable line, non-UTF-8 bytes, oversized line,
/// out-of-range id, failed reload — becomes an `error:` reply line and the
/// session keeps serving; only transport errors (the peer vanished) and
/// EOF end it.
pub fn serve_session(
    registry: &StoreRegistry,
    pool: &WorkerPool,
    reader: &mut impl LineSource,
    writer: &mut impl Write,
    opts: &SessionOpts,
) -> std::io::Result<SessionSummary> {
    let mut summary = SessionSummary::default();
    let mut pending: Vec<Result<Query, GrepairError>> = Vec::new();
    let mut line = Vec::new();
    loop {
        let event = read_limited_line(reader, &mut line, opts.max_line)?;
        match event {
            LineEvent::Eof | LineEvent::MidLineEof => {
                // A partial line cannot be answered (the client is gone and
                // the request is incomplete); answer what was complete.
                flush_pending(registry, pool, &mut pending, writer, &mut summary)?;
                writer.flush()?;
                return Ok(summary);
            }
            LineEvent::Oversized => {
                pending.push(Err(GrepairError::BadRequest(format!(
                    "line exceeds {} bytes",
                    opts.max_line
                ))));
            }
            LineEvent::Line => match std::str::from_utf8(&line) {
                Err(_) => {
                    pending.push(Err(GrepairError::BadRequest("line is not valid UTF-8".into())));
                }
                Ok(text) => {
                    let text = text.trim();
                    if text.is_empty() || text.starts_with('#') {
                        // Skipped without a reply — exactly like serve-file,
                        // which keeps the two outputs byte-identical.
                    } else if let Some(admin) = parse_admin(text) {
                        // Answer everything that came before the admin
                        // command first: replies stay in request order, and
                        // a RELOAD cannot retroactively change them.
                        flush_pending(registry, pool, &mut pending, writer, &mut summary)?;
                        let quit = matches!(admin, Ok(Admin::Quit));
                        let reply = handle_admin(registry, admin, opts, &mut summary);
                        summary.served += 1;
                        if reply.starts_with("error: ") {
                            summary.errors += 1;
                        }
                        writeln!(writer, "{reply}")?;
                        writer.flush()?;
                        if quit {
                            return Ok(summary);
                        }
                    } else {
                        pending.push(parse_query(text));
                    }
                }
            },
        }
        // Adaptive batching: evaluate once the batch is full or the client
        // has nothing more already buffered.
        if pending.len() >= opts.batch || (!pending.is_empty() && !reader.buffered()) {
            flush_pending(registry, pool, &mut pending, writer, &mut summary)?;
            writer.flush()?;
        }
    }
}

/// Evaluate the pending lines against the *current* store generation and
/// write one reply line each, in input order.
fn flush_pending(
    registry: &StoreRegistry,
    pool: &WorkerPool,
    pending: &mut Vec<Result<Query, GrepairError>>,
    writer: &mut impl Write,
    summary: &mut SessionSummary,
) -> std::io::Result<()> {
    if pending.is_empty() {
        return Ok(());
    }
    // One snapshot per batch: a concurrent RELOAD swaps the registry but
    // this batch finishes on the Arc it grabbed — in-flight answers are
    // never torn across generations.
    let store = registry.current();
    let queries: Vec<Query> = pending.iter().filter_map(|p| p.as_ref().ok().cloned()).collect();
    let answers = if queries.len() >= INLINE_BATCH {
        store.query_batch_on(&queries, pool)
    } else {
        store.query_batch(&queries)
    };
    let mut next = 0usize;
    for entry in pending.drain(..) {
        summary.served += 1;
        match entry {
            Ok(_) => {
                match &answers[next] {
                    Ok(answer) => writeln!(writer, "{answer}")?,
                    Err(e) => {
                        summary.errors += 1;
                        writeln!(writer, "{}", error_reply(e))?;
                    }
                }
                next += 1;
            }
            Err(e) => {
                summary.errors += 1;
                writeln!(writer, "{}", error_reply(e))?;
            }
        }
    }
    Ok(())
}

/// Execute one admin command and render its single reply line.
fn handle_admin(
    registry: &StoreRegistry,
    admin: Result<Admin, String>,
    opts: &SessionOpts,
    summary: &mut SessionSummary,
) -> String {
    match admin {
        Err(reason) => error_reply(format_args!("bad request: {reason}")),
        Ok(Admin::Ping) => "pong".into(),
        Ok(Admin::Quit) => "bye".into(),
        Ok(Admin::Info) => {
            let store = registry.current();
            format!(
                "grepair proto={PROTO_VERSION} generation={} nodes={} backend={}",
                store.generation(),
                store.total_nodes(),
                store.backend()
            )
        }
        Ok(Admin::Stats) => registry.stats().to_string(),
        Ok(Admin::Reload(path)) => {
            let path = path.or_else(|| opts.reload_path.clone());
            let Some(path) = path else {
                return error_reply("bad request: RELOAD needs a path (no default configured)");
            };
            match registry.reload_from(&path) {
                // Report from the swapped-in snapshot, not current(): a
                // concurrent reload must not pair this generation number
                // with another generation's node count.
                Ok(store) => {
                    summary.reloads += 1;
                    format!(
                        "reloaded generation={} nodes={}",
                        store.generation(),
                        store.total_nodes()
                    )
                }
                Err(e) => error_reply(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grepair_core::{compress, GRePairConfig};
    use grepair_hypergraph::Hypergraph;
    use grepair_store::{write_container, GraphStore};

    fn g2g(reps: u32) -> Vec<u8> {
        let (g, _) = Hypergraph::from_simple_edges(
            (2 * reps + 1) as usize,
            (0..reps).flat_map(|i| [(2 * i, 0u32, 2 * i + 1), (2 * i + 1, 1u32, 2 * i + 2)]),
        );
        let out = compress(&g, &GRePairConfig::default());
        let enc = grepair_codec::encode(&out.grammar);
        write_container(&enc.bytes, enc.bit_len)
    }

    fn registry(reps: u32) -> StoreRegistry {
        StoreRegistry::new(GraphStore::from_bytes(&g2g(reps)).unwrap())
    }

    /// Run `input` through a session against a fresh 17-node store and
    /// return the reply bytes as text.
    fn run(input: &str) -> (String, SessionSummary) {
        let registry = registry(8);
        let pool = WorkerPool::new(2);
        let mut reader: &[u8] = input.as_bytes();
        let mut out = Vec::new();
        let summary =
            serve_session(&registry, &pool, &mut reader, &mut out, &SessionOpts::default())
                .unwrap();
        (String::from_utf8(out).unwrap(), summary)
    }

    #[test]
    fn answers_and_errors_in_request_order() {
        let (out, summary) = run("out 0\nbogus 1\nreach 0 16\n\n# comment\ndegrees\n");
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4, "{out}");
        assert_eq!(lines[0], "1");
        assert!(lines[1].starts_with("error: bad request"), "{out}");
        assert_eq!(lines[2], "true");
        assert!(lines[3].starts_with("min="), "{out}");
        assert_eq!(summary.served, 4);
        assert_eq!(summary.errors, 1);
    }

    #[test]
    fn admin_plane_replies() {
        let (out, summary) = run("PING\nINFO\nSTATS\nQUIT\nout 0\n");
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "pong");
        assert_eq!(lines[1], "grepair proto=1 generation=1 nodes=17 backend=grepair");
        assert!(lines[2].starts_with("generation=1 loads=1 "), "{out}");
        assert_eq!(lines[3], "bye");
        // QUIT ends the session: the query after it is never answered.
        assert_eq!(lines.len(), 4, "{out}");
        assert_eq!(summary.served, 4);
        assert_eq!(summary.reloads, 0);
    }

    #[test]
    fn admin_lines_with_trailing_tokens_error_but_serve_on() {
        let (out, _) = run("PING extra\nout 0\n");
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].starts_with("error: bad request"), "{out}");
        assert_eq!(lines[1], "1");
    }

    #[test]
    fn oversized_lines_error_and_the_next_line_still_parses() {
        let long = "a".repeat(DEFAULT_MAX_LINE * 3);
        let (out, summary) = run(&format!("out 0\n{long}\nout 0\n"));
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "1");
        assert!(lines[1].contains("exceeds"), "{out}");
        assert_eq!(lines[2], "1");
        assert_eq!(summary.errors, 1);
    }

    #[test]
    fn exactly_max_line_is_not_oversized() {
        // A comment line of exactly max_line bytes: skipped, not an error.
        let comment = format!("#{}", " ".repeat(DEFAULT_MAX_LINE - 1));
        let (out, summary) = run(&format!("{comment}\nout 0\n"));
        assert_eq!(out, "1\n");
        assert_eq!(summary.errors, 0);
    }

    #[test]
    fn non_utf8_lines_error_and_serve_on() {
        let registry = registry(8);
        let pool = WorkerPool::new(1);
        let mut input = Vec::new();
        input.extend_from_slice(b"\xff\xfe garbage\n");
        input.extend_from_slice(b"out 0\n");
        let mut reader: &[u8] = &input;
        let mut out = Vec::new();
        serve_session(&registry, &pool, &mut reader, &mut out, &SessionOpts::default()).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains("not valid UTF-8"), "{text}");
        assert_eq!(lines[1], "1");
    }

    #[test]
    fn mid_line_eof_discards_the_partial_line() {
        // "out 1" with no newline: complete lines are answered, the
        // partial one is not (it was never a request).
        let (out, summary) = run("out 0\nout 1");
        assert_eq!(out, "1\n");
        assert_eq!(summary.served, 1);
    }

    #[test]
    fn reload_swaps_generation_mid_session() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("grepair_session_{}.g2g", std::process::id()));
        std::fs::write(&path, g2g(16)).unwrap();
        let registry = registry(8);
        let pool = WorkerPool::new(2);
        let input = format!(
            "in 32\nRELOAD {0}\nin 32\nRELOAD /nonexistent.g2g\nSTATS\n",
            path.display()
        );
        let mut reader: &[u8] = input.as_bytes();
        let mut out = Vec::new();
        let summary =
            serve_session(&registry, &pool, &mut reader, &mut out, &SessionOpts::default())
                .unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // Node 32 is out of range in generation 1 (17 nodes)...
        assert!(lines[0].starts_with("error:"), "{text}");
        assert_eq!(lines[1], "reloaded generation=2 nodes=33");
        // ...and valid after the reload. The expected ids come from the
        // store itself (the compressor renumbers nodes, so the answer is
        // in derived ids, not input-file ids).
        let reloaded = GraphStore::from_bytes(&g2g(16)).unwrap();
        let expected = reloaded.query(&grepair_store::Query::InNeighbors(32)).unwrap();
        assert_eq!(lines[2], expected.to_string(), "{text}");
        // A failed reload keeps generation 2 serving.
        assert!(lines[3].starts_with("error:"), "{text}");
        assert!(lines[4].starts_with("generation=2 "), "{text}");
        assert_eq!(summary.reloads, 1);
        assert_eq!(registry.generation(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn large_batches_route_through_the_pool() {
        // 3 × batch-size lines all buffered up front: the session must
        // evaluate in batch-sized chunks through the pool, in order.
        let n = 17u64;
        let opts = SessionOpts { batch: 64, ..SessionOpts::default() };
        let mut input = String::new();
        let mut expected = String::new();
        for i in 0..192u64 {
            input.push_str(&format!("reach 0 {}\n", i % n));
            expected.push_str("true\n");
        }
        let registry = registry(8);
        let pool = WorkerPool::new(4);
        let mut reader: &[u8] = input.as_bytes();
        let mut out = Vec::new();
        let summary = serve_session(&registry, &pool, &mut reader, &mut out, &opts).unwrap();
        assert_eq!(String::from_utf8(out).unwrap(), expected);
        assert_eq!(summary.served, 192);
        let stats = registry.stats();
        assert!(stats.parallel_batches >= 1, "{stats}");
    }
}
