//! One connection's lifetime: the newline-delimited wire protocol engine
//! (DESIGN.md §6, multi-tenant addressing in §8).
//!
//! The query plane is exactly the `store serve-file` line protocol — one
//! query per line, one reply line back, per-line errors never close the
//! connection — so the two front ends are byte-identical on the same input
//! (the CI smoke step diffs them). A query line may carry a one-shot
//! `name:` namespace prefix; unprefixed lines go to the session's current
//! namespace (`default` until a `USE`). On top sits the admin plane:
//! upper-case verbs (`PING`, `INFO`, `STATS [name]`, `USE`, `ATTACH`,
//! `DETACH`, `LIST`, `RELOAD`, `PATCH`, `VERSIONS [name]`, `FAULTS`,
//! `SHUTDOWN`, `QUIT`) that a query file can never collide with, because
//! query verbs are lower-case.
//!
//! Versioning (DESIGN.md §12) rides both planes: `PATCH ADD|DEL <s> <l>
//! <t>` applies one edge patch to the session's namespace (a new retained
//! version, generation bump included), `VERSIONS` lists the retained
//! versions, and any query line may end with an `@vN` suffix pinning its
//! evaluation to retained version `N` while bare lines track the head.
//!
//! Overload and faults degrade per line, never per connection
//! (DESIGN.md §10): when the shared pool is past its shed watermark the
//! pending batch is answered with `busy` lines instead of queueing deeper,
//! and a namespace whose circuit breaker is open answers fast
//! `error: unavailable:` lines while healthy namespaces in the same batch
//! serve normally. `SHUTDOWN` flips the server's drain flag, replies
//! `draining`, and ends the session.
//!
//! Batching is adaptive: lines are parsed and buffered while more input is
//! already waiting in the read buffer, and the pending batch is evaluated
//! (through the shared [`WorkerPool`] for large batches) the moment the
//! client pauses — so an interactive `nc` session gets an answer per line
//! while a pipelined client gets amortized batches, without any flush
//! command in the protocol. A mixed-namespace batch is grouped per
//! namespace (one store snapshot each) and the replies are written back in
//! input order.

use std::io::{BufRead, BufReader, Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use grepair_store::{
    error_reply, parse_query, valid_namespace, EdgePatch, GrepairError, Query, StoreRegistry,
    DEFAULT_NAMESPACE,
};
use grepair_util::fail;

use crate::pool::WorkerPool;

/// Wire protocol version, echoed by `INFO`. Bumped only for *breaking*
/// changes (a reply rendering change, a verb repurposed); new verbs and new
/// `INFO`/`STATS` fields are additive and do not bump it. Version 2 was the
/// multi-tenant protocol (DESIGN.md §8): `INFO` gained a `namespace=`
/// field and bare `STATS` now renders the registry aggregate. Version 3 is
/// the versioning protocol (DESIGN.md §12): query-line parsing changed —
/// an `@vN` suffix now pins a line to a retained version, where v2 passed
/// the `@` through to the query parser — and `PATCH`/`VERSIONS` joined the
/// admin plane.
pub const PROTO_VERSION: u32 = 3;

/// Default cap on buffered-but-unanswered lines before a forced evaluation.
pub const DEFAULT_BATCH: usize = 1024;

/// Default cap on one request line, bytes. A line longer than this is
/// answered with an error and discarded — DoS defense, not a format limit.
pub const DEFAULT_MAX_LINE: usize = 64 * 1024;

/// Batches smaller than this are answered on the session thread itself:
/// below it, the channel round-trip to the pool costs more than the
/// queries.
const INLINE_BATCH: usize = 16;

/// Per-session tunables, shared by every connection of one server.
#[derive(Debug, Clone)]
pub struct SessionOpts {
    /// Evaluate the pending batch at this many lines even if the client
    /// keeps streaming.
    pub batch: usize,
    /// Maximum accepted line length in bytes.
    pub max_line: usize,
    /// What a bare `RELOAD` of the *default* namespace reloads when the
    /// registry has no recorded path for it (the path the server was
    /// started from); `None` leaves only the registry's own records.
    pub reload_path: Option<String>,
    /// Set by a `SHUTDOWN` verb (any session) or SIGTERM; the socket server
    /// watches it to stop accepting and drain (DESIGN.md §10). Sessions
    /// also check it between batches so a streaming client cannot hold the
    /// drain open forever. `None` (serve-file, tests) means `SHUTDOWN`
    /// only ends the issuing session.
    pub drain: Option<Arc<AtomicBool>>,
}

impl Default for SessionOpts {
    fn default() -> Self {
        Self { batch: DEFAULT_BATCH, max_line: DEFAULT_MAX_LINE, reload_path: None, drain: None }
    }
}

/// What one finished session did (for the server's connection log).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SessionSummary {
    /// Reply lines written (answers + error lines).
    pub served: u64,
    /// How many of those were error lines.
    pub errors: u64,
    /// Successful `RELOAD`s performed by this session.
    pub reloads: u64,
    /// Lines answered `busy` because the pool was past its shed watermark.
    pub sheds: u64,
}

/// A buffered byte source that can tell whether more input is *already*
/// buffered — the signal the adaptive batcher uses to decide "evaluate now
/// or keep reading" without ever blocking on a peek.
pub trait LineSource: BufRead {
    /// True when at least one byte can be read without blocking.
    fn buffered(&self) -> bool;
}

impl<R: Read> LineSource for BufReader<R> {
    fn buffered(&self) -> bool {
        !self.buffer().is_empty()
    }
}

/// In-memory sources are "fully buffered" until exhausted (tests and the
/// offline path).
impl LineSource for &[u8] {
    fn buffered(&self) -> bool {
        !self.is_empty()
    }
}

/// One line-read outcome. Distinguishing the failure shapes matters: an
/// oversized line gets an error *reply* and the session continues; a
/// mid-line disconnect can't be replied to, so the session just ends
/// cleanly.
enum LineEvent {
    /// Clean EOF at a line boundary.
    Eof,
    /// A complete line (without its terminator) is in the buffer.
    Line,
    /// The line exceeded `max_line`; its remainder was consumed and
    /// discarded.
    Oversized,
    /// EOF in the middle of a line — the partial line is discarded.
    MidLineEof,
}

/// Read one `\n`-terminated line of at most `max` bytes into `buf`
/// (cleared first). Never reads past the terminating newline.
fn read_limited_line(
    reader: &mut impl LineSource,
    buf: &mut Vec<u8>,
    max: usize,
) -> std::io::Result<LineEvent> {
    buf.clear();
    // `take(max + 1)`: the extra byte distinguishes "exactly max bytes then
    // newline" (fine) from "longer than max" (oversized). Saturating: a
    // `--max-line usize::MAX` must mean "unlimited", not wrap to take(0).
    let read = reader.take((max as u64).saturating_add(1)).read_until(b'\n', buf)?;
    if read == 0 {
        return Ok(LineEvent::Eof);
    }
    if buf.last() == Some(&b'\n') {
        buf.pop();
        if buf.last() == Some(&b'\r') {
            buf.pop(); // tolerate CRLF clients (telnet, Windows nc)
        }
        return Ok(LineEvent::Line);
    }
    if read <= max {
        return Ok(LineEvent::MidLineEof);
    }
    // Oversized: swallow the rest of the line so the *next* line parses.
    let mut rest = Vec::new();
    loop {
        rest.clear();
        let n = reader.take(8192).read_until(b'\n', &mut rest)?;
        if n == 0 || rest.last() == Some(&b'\n') {
            return Ok(LineEvent::Oversized);
        }
    }
}

/// The admin plane: upper-case verbs, handled out-of-band of the query
/// batch (but only after the pending batch is answered, so replies stay in
/// request order).
enum Admin {
    Ping,
    Info,
    /// Bare `STATS` (registry aggregate) or `STATS <name>` (one store).
    Stats(Option<String>),
    Reload(Option<String>),
    /// Switch the session's current namespace.
    Use(String),
    /// Register a container file under a namespace, eagerly opened.
    Attach { name: String, path: String },
    /// Unregister a namespace.
    Detach(String),
    /// One-line listing of every namespace with residency and generation.
    List,
    /// Apply one edge patch to the session's namespace: `PATCH ADD|DEL
    /// <s> <label> <t>` (DESIGN.md §12). Arity and operand validity are
    /// checked by the shared patch-line parser in `handle_admin`.
    Patch(Vec<String>),
    /// `VERSIONS` (session namespace) or `VERSIONS <name>`: list the
    /// retained versions of a namespace's patch log.
    Versions(Option<String>),
    /// Inspect or reconfigure the failpoint layer (`FAULTS`,
    /// `FAULTS SET <name> <spec>`, `FAULTS CLEAR [name]`,
    /// `FAULTS SEED <n>`). Errors when the `fail` feature is compiled out.
    Faults(Vec<String>),
    /// Flip the drain flag, reply `draining`, end the session.
    Shutdown,
    Quit,
}

/// `Some` iff the line's first token is an admin verb. Malformed admin
/// lines (wrong arity) are still admin — they get an admin error reply,
/// not a query parse error.
fn parse_admin(line: &str) -> Option<Result<Admin, String>> {
    let mut it = line.split_whitespace();
    let verb = it.next()?;
    let no_args = |admin: Admin, mut rest: std::str::SplitWhitespace<'_>| match rest.next() {
        None => Ok(admin),
        Some(extra) => Err(format!("unexpected trailing token {extra:?}")),
    };
    let one_arg = |build: fn(String) -> Admin,
                   what: &str,
                   mut rest: std::str::SplitWhitespace<'_>| {
        let Some(arg) = rest.next() else {
            return Err(format!("{what} needs an argument"));
        };
        match rest.next() {
            None => Ok(build(arg.to_string())),
            Some(extra) => Err(format!("unexpected trailing token {extra:?}")),
        }
    };
    Some(match verb {
        "PING" => no_args(Admin::Ping, it),
        "INFO" => no_args(Admin::Info, it),
        "LIST" => no_args(Admin::List, it),
        "QUIT" => no_args(Admin::Quit, it),
        "SHUTDOWN" => no_args(Admin::Shutdown, it),
        // Arity is checked per subcommand in `handle_faults`.
        "FAULTS" => Ok(Admin::Faults(it.map(str::to_string).collect())),
        // Arity and operands are checked by the shared patch-line parser.
        "PATCH" => Ok(Admin::Patch(it.map(str::to_string).collect())),
        "VERSIONS" => {
            let name = it.next().map(str::to_string);
            match it.next() {
                None => Ok(Admin::Versions(name)),
                Some(extra) => Err(format!("unexpected trailing token {extra:?}")),
            }
        }
        "USE" => one_arg(Admin::Use, "USE", it),
        "DETACH" => one_arg(Admin::Detach, "DETACH", it),
        "STATS" => {
            let name = it.next().map(str::to_string);
            match it.next() {
                None => Ok(Admin::Stats(name)),
                Some(extra) => Err(format!("unexpected trailing token {extra:?}")),
            }
        }
        "ATTACH" => {
            let (name, path) = match (it.next(), it.next()) {
                (Some(name), Some(path)) => (name.to_string(), path.to_string()),
                _ => return Some(Err("ATTACH needs a name and a path".into())),
            };
            match it.next() {
                None => Ok(Admin::Attach { name, path }),
                Some(extra) => Err(format!("unexpected trailing token {extra:?}")),
            }
        }
        "RELOAD" => {
            let path = it.next().map(str::to_string);
            match it.next() {
                None => Ok(Admin::Reload(path)),
                Some(extra) => Err(format!("unexpected trailing token {extra:?}")),
            }
        }
        _ => return None,
    })
}

/// One buffered query line: the namespace it was addressed to (the
/// session's current one, or a one-shot `name:` prefix), the retained
/// version it was pinned to (`Some` iff the line carried an `@vN` suffix;
/// `None` tracks the head), and its parse outcome.
type Pending = (String, Option<u64>, Result<Query, GrepairError>);

/// Split a trailing `@vN` version pin off a query line (DESIGN.md §12).
/// `@` cannot appear in a valid query (ids and labels are decimal,
/// patterns use label numbers and operators), so any line containing one
/// is a pin attempt: a malformed pin is an error, not query text.
fn split_version(text: &str) -> Result<(&str, Option<u64>), GrepairError> {
    let Some((head, tail)) = text.rsplit_once('@') else {
        return Ok((text, None));
    };
    let version = tail
        .trim()
        .strip_prefix('v')
        .and_then(|n| n.parse::<u64>().ok())
        .ok_or_else(|| {
            GrepairError::BadRequest(format!("bad version suffix {:?} (want @vN)", format!("@{}", tail.trim())))
        })?;
    Ok((head.trim_end(), Some(version)))
}

/// What handling one complete line asks the driver to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Step {
    /// Keep feeding lines.
    Continue,
    /// `QUIT`/`SHUTDOWN` was answered — end the session; any input after
    /// it is never served.
    Quit,
}

/// The per-connection protocol state machine, factored out of the blocking
/// loop so both front ends drive the *same* engine: [`serve_session`]
/// feeds it from a blocking [`LineSource`], the epoll reactor
/// (DESIGN.md §11) from non-blocking per-connection frame buffers. One
/// engine is what makes the two modes byte-identical by construction —
/// there is no second protocol implementation to drift.
///
/// The driver owns framing (turning bytes into complete lines) and the
/// batching *decision* ("the client paused"); the state owns everything
/// protocol: the current namespace, the pending batch, and the summary.
#[derive(Debug)]
pub(crate) struct SessionState {
    namespace: String,
    pending: Vec<Pending>,
    pub(crate) summary: SessionSummary,
}

impl SessionState {
    pub(crate) fn new() -> Self {
        Self {
            namespace: DEFAULT_NAMESPACE.to_string(),
            pending: Vec::new(),
            summary: SessionSummary::default(),
        }
    }

    /// Lines buffered but not yet answered.
    pub(crate) fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Record one line that exceeded `max_line`: an error *reply* queued in
    /// request order; the driver has already discarded the line's bytes.
    pub(crate) fn push_oversized(&mut self, max_line: usize) {
        self.pending.push((
            self.namespace.clone(),
            None,
            Err(GrepairError::BadRequest(format!("line exceeds {max_line} bytes"))),
        ));
    }

    /// Feed one complete line (terminator and any trailing `\r` already
    /// stripped). Admin verbs are answered immediately (after flushing the
    /// pending batch, so replies stay in request order); query lines are
    /// buffered into the pending batch for the driver to flush.
    pub(crate) fn on_line(
        &mut self,
        registry: &StoreRegistry,
        pool: &WorkerPool,
        line: &[u8],
        writer: &mut impl Write,
        opts: &SessionOpts,
    ) -> std::io::Result<Step> {
        let Ok(text) = std::str::from_utf8(line) else {
            self.pending.push((
                self.namespace.clone(),
                None,
                Err(GrepairError::BadRequest("line is not valid UTF-8".into())),
            ));
            return Ok(Step::Continue);
        };
        let text = text.trim();
        if text.is_empty() || text.starts_with('#') {
            // Skipped without a reply — exactly like serve-file, which
            // keeps the front ends byte-identical.
            return Ok(Step::Continue);
        }
        if let Some(admin) = parse_admin(text) {
            // Answer everything that came before the admin command first:
            // replies stay in request order, and a RELOAD cannot
            // retroactively change them.
            self.flush(registry, pool, writer)?;
            let quit = matches!(admin, Ok(Admin::Quit) | Ok(Admin::Shutdown));
            let reply = handle_admin(registry, admin, opts, &mut self.namespace, &mut self.summary);
            self.summary.served += 1;
            if reply.starts_with("error: ") {
                self.summary.errors += 1;
            }
            fail::point("session.write").map_err(std::io::Error::other)?;
            writeln!(writer, "{reply}")?;
            writer.flush()?;
            return Ok(if quit { Step::Quit } else { Step::Continue });
        }
        // A `name:` prefix addresses one line at another namespace;
        // anything else (including a `:` deeper in the line after a
        // non-name prefix) parses as a plain query against the session's
        // namespace.
        let (target, query_text) = match text.split_once(':') {
            Some((prefix, rest)) if valid_namespace(prefix) => {
                (prefix.to_string(), rest.trim_start())
            }
            _ => (self.namespace.clone(), text),
        };
        // An `@vN` suffix pins this line to a retained version; a
        // malformed pin is the line's reply, the rest never parses.
        match split_version(query_text) {
            Ok((query_text, version)) => {
                self.pending.push((target, version, parse_query(query_text)));
            }
            Err(e) => self.pending.push((target, None, Err(e))),
        }
        Ok(Step::Continue)
    }

    /// Evaluate the pending batch and write one reply line each, in input
    /// order (see [`flush_pending`]). Does not flush the writer — the
    /// driver decides when buffered replies hit the transport.
    pub(crate) fn flush(
        &mut self,
        registry: &StoreRegistry,
        pool: &WorkerPool,
        writer: &mut impl Write,
    ) -> std::io::Result<()> {
        flush_pending(registry, pool, &mut self.pending, writer, &mut self.summary)
    }
}

/// Serve one connection (or any line stream) to completion.
///
/// `reader`/`writer` are the two halves of the connection; the function
/// returns when the client disconnects or sends `QUIT`. Every failure mode
/// below the transport — unparsable line, non-UTF-8 bytes, oversized line,
/// out-of-range id, unknown namespace, failed reload or attach — becomes an
/// `error:` reply line and the session keeps serving; only transport errors
/// (the peer vanished) and EOF end it.
pub fn serve_session(
    registry: &StoreRegistry,
    pool: &WorkerPool,
    reader: &mut impl LineSource,
    writer: &mut impl Write,
    opts: &SessionOpts,
) -> std::io::Result<SessionSummary> {
    let mut state = SessionState::new();
    let mut line = Vec::new();
    loop {
        // A fired `session.read` fault is a transport error: the peer is
        // treated as vanished, exactly like a real half-open TCP drop.
        fail::point("session.read").map_err(std::io::Error::other)?;
        let event = read_limited_line(reader, &mut line, opts.max_line)?;
        match event {
            LineEvent::Eof | LineEvent::MidLineEof => {
                // A partial line cannot be answered (the client is gone and
                // the request is incomplete); answer what was complete.
                state.flush(registry, pool, writer)?;
                writer.flush()?;
                return Ok(state.summary);
            }
            LineEvent::Oversized => state.push_oversized(opts.max_line),
            LineEvent::Line => {
                if state.on_line(registry, pool, &line, writer, opts)? == Step::Quit {
                    return Ok(state.summary);
                }
            }
        }
        // Adaptive batching: evaluate once the batch is full or the client
        // has nothing more already buffered.
        if state.pending_len() >= opts.batch || (state.pending_len() > 0 && !reader.buffered()) {
            state.flush(registry, pool, writer)?;
            writer.flush()?;
        }
        // Between batches a draining server ends the session: in-flight
        // batches were just answered; a streaming client must not be able
        // to hold the drain open until the deadline kills it.
        if opts.drain.as_ref().is_some_and(|d| d.load(Ordering::Relaxed)) {
            state.flush(registry, pool, writer)?;
            writer.flush()?;
            return Ok(state.summary);
        }
    }
}

/// Evaluate the pending lines and write one reply line each, in input
/// order. The batch is grouped per (namespace, version pin): each group
/// is resolved once (lazily opening a cold store — that resolution *is*
/// the namespace's hit; pinned lines resolve through the patch log) and
/// its queries are evaluated against that one snapshot, so a concurrent
/// RELOAD, PATCH, or eviction never tears a batch across generations. A
/// group that fails to resolve (unknown namespace or version, hostile
/// file) turns into per-line error replies; the other groups' lines are
/// unaffected.
fn flush_pending(
    registry: &StoreRegistry,
    pool: &WorkerPool,
    pending: &mut Vec<Pending>,
    writer: &mut impl Write,
    summary: &mut SessionSummary,
) -> std::io::Result<()> {
    if pending.is_empty() {
        return Ok(());
    }
    // Load shedding (DESIGN.md §10): past the pool's queue-depth watermark
    // (or under an injected `pool.submit` fault) the whole pending batch is
    // answered `busy` instead of queueing deeper. A shed is not an error —
    // the client retries the same lines; nothing about its requests was
    // wrong.
    if pool.overloaded() || fail::point("pool.submit").is_err() {
        let shed = pending.len() as u64;
        pool.note_shed(shed);
        summary.sheds += shed;
        summary.served += shed;
        fail::point("session.write").map_err(std::io::Error::other)?;
        for _ in pending.drain(..) {
            writeln!(writer, "busy")?;
        }
        return Ok(());
    }
    let mut replies: Vec<Option<Result<std::sync::Arc<grepair_store::QueryAnswer>, GrepairError>>> =
        Vec::new();
    replies.resize_with(pending.len(), || None);
    // Groups in order of first appearance, so resolution (and its side
    // effects: lazy opens, LRU hits) happens in request order.
    let mut order: Vec<(&str, Option<u64>)> = Vec::new();
    for (ns, version, parsed) in pending.iter() {
        if parsed.is_ok() && !order.contains(&(ns.as_str(), *version)) {
            order.push((ns, *version));
        }
    }
    for (ns, version) in order {
        let indexes: Vec<usize> = pending
            .iter()
            .enumerate()
            .filter(|(_, (name, pin, parsed))| name == ns && *pin == version && parsed.is_ok())
            .map(|(i, _)| i)
            .collect();
        // A bare line tracks the namespace's head; an `@vN` pin resolves
        // through the patch log (DESIGN.md §12).
        let resolved = match version {
            None => registry.store(ns),
            Some(v) => registry.store_at(ns, v),
        };
        match resolved {
            Err(e) => {
                for &i in &indexes {
                    // audited: indexes come from enumerating pending; replies has the same length
                    replies[i] = Some(Err(e.clone()));
                }
            }
            Ok(store) => {
                let queries: Vec<Query> = indexes
                    .iter()
                    // audited: indexes filtered to parsed.is_ok() entries of pending just above
                    .map(|&i| pending[i].2.as_ref().cloned().expect("filtered to Ok"))
                    .collect();
                let answers = if queries.len() >= INLINE_BATCH {
                    store.query_batch_on(&queries, pool)
                } else {
                    store.query_batch(&queries)
                };
                for (&i, answer) in indexes.iter().zip(answers) {
                    // audited: indexes come from enumerating pending; replies has the same length
                    replies[i] = Some(answer);
                }
            }
        }
    }
    fail::point("session.write").map_err(std::io::Error::other)?;
    for (reply, (_, _, entry)) in replies.into_iter().zip(pending.drain(..)) {
        summary.served += 1;
        let outcome = match entry {
            Err(e) => Err(e),
            // audited: every parsed query's namespace was visited, filling its slot
            Ok(_) => reply.expect("every parsed query got a reply slot"),
        };
        match outcome {
            Ok(answer) => writeln!(writer, "{answer}")?,
            Err(e) => {
                summary.errors += 1;
                writeln!(writer, "{}", error_reply(e))?;
            }
        }
    }
    Ok(())
}

/// Execute one admin command and render its single reply line.
fn handle_admin(
    registry: &StoreRegistry,
    admin: Result<Admin, String>,
    opts: &SessionOpts,
    namespace: &mut String,
    summary: &mut SessionSummary,
) -> String {
    match admin {
        Err(reason) => error_reply(format_args!("bad request: {reason}")),
        Ok(Admin::Ping) => "pong".into(),
        Ok(Admin::Quit) => "bye".into(),
        Ok(Admin::Info) => match registry.store(namespace) {
            Err(e) => error_reply(e),
            Ok(store) => {
                let reload_failures =
                    registry.health_of(namespace).map_or(0, |h| h.reload_failures);
                format!(
                    "grepair proto={PROTO_VERSION} namespace={namespace} generation={} nodes={} backend={} reload_failures={reload_failures}",
                    store.generation(),
                    store.total_nodes(),
                    store.backend()
                )
            }
        },
        Ok(Admin::Stats(None)) => registry.aggregate_stats().to_string(),
        Ok(Admin::Stats(Some(name))) => match registry.stats_for(&name) {
            Ok(stats) => {
                // Per-namespace health rides along (DESIGN.md §10): the
                // monotonic failure counters always render; the last error
                // only once there is one (quoted — error strings contain
                // spaces).
                let mut reply = stats.to_string();
                if let Ok(health) = registry.health_of(&name) {
                    reply.push_str(&format!(
                        " open_failures={} reload_failures={} breaker_trips={} breaker_open={}",
                        health.open_failures,
                        health.reload_failures,
                        health.breaker_trips,
                        health.breaker_open
                    ));
                    if let Some(last) = health.last_error {
                        reply.push_str(&format!(" last_error={last:?}"));
                    }
                }
                reply
            }
            Err(e) => error_reply(e),
        },
        Ok(Admin::Use(name)) => {
            if registry.contains(&name) {
                *namespace = name;
                format!("using {namespace}")
            } else {
                error_reply(format_args!("bad request: unknown namespace {name:?}"))
            }
        }
        Ok(Admin::Attach { name, path }) => match registry.attach(&name, &path) {
            Ok(store) => format!(
                "attached {name} generation={} nodes={} backend={}",
                store.generation(),
                store.total_nodes(),
                store.backend()
            ),
            Err(e) => error_reply(e),
        },
        Ok(Admin::Detach(name)) => match registry.detach(&name) {
            Ok(()) => format!("detached {name}"),
            Err(e) => error_reply(e),
        },
        Ok(Admin::List) => {
            let entries = registry.list();
            let mut reply = format!("namespaces={}", entries.len());
            for (name, resident, generation) in entries {
                let state = if resident { "resident" } else { "cold" };
                reply.push_str(&format!(" {name}={state}:{generation}"));
            }
            reply
        }
        Ok(Admin::Reload(path)) => {
            // A bare RELOAD re-reads the namespace's recorded path; for the
            // default namespace the server's startup path is the fallback
            // (registries seeded from in-memory stores record none).
            let explicit = path.or_else(|| {
                (namespace.as_str() == DEFAULT_NAMESPACE)
                    .then(|| opts.reload_path.clone())
                    .flatten()
            });
            match registry.reload(namespace, explicit.as_deref()) {
                // Report from the swapped-in snapshot, not a fresh
                // resolution: a concurrent reload must not pair this
                // generation number with another generation's node count.
                Ok(store) => {
                    summary.reloads += 1;
                    format!(
                        "reloaded generation={} nodes={}",
                        store.generation(),
                        store.total_nodes()
                    )
                }
                Err(e) => error_reply(e),
            }
        }
        Ok(Admin::Patch(args)) => {
            // One PATCH line = one patch record = one new retained version
            // (DESIGN.md §12). Reported from the swapped-in head snapshot,
            // same rule as RELOAD.
            match EdgePatch::parse(&args.join(" "))
                .and_then(|patch| registry.patch(namespace, patch))
            {
                Ok((version, store)) => format!(
                    "patched version={} generation={} added={} removed={}",
                    version.version,
                    store.generation(),
                    version.added,
                    version.removed
                ),
                Err(e) => error_reply(e),
            }
        }
        Ok(Admin::Versions(name)) => {
            match registry.versions_of(name.as_deref().unwrap_or(namespace.as_str())) {
                Ok(summaries) => {
                    let head = summaries.last().map_or(0, |s| s.version);
                    let mut reply = format!("versions={} head=v{head}", summaries.len());
                    for s in &summaries {
                        reply.push_str(&format!(" {s}"));
                    }
                    reply
                }
                Err(e) => error_reply(e),
            }
        }
        Ok(Admin::Shutdown) => {
            if let Some(drain) = &opts.drain {
                drain.store(true, Ordering::Relaxed);
            }
            "draining".into()
        }
        Ok(Admin::Faults(args)) => handle_faults(&args),
    }
}

/// Execute one `FAULTS` subcommand against the process-wide failpoint
/// table (DESIGN.md §10). With the `fail` feature compiled out, mutating
/// subcommands error (`grepair_util::fail::DISABLED`) and the bare listing
/// reports `compiled=off` — so an operator can always tell which build
/// they are talking to.
fn handle_faults(args: &[String]) -> String {
    let compiled = if fail::enabled() { "on" } else { "off" };
    match args.first().map(String::as_str) {
        None => {
            let mut reply = format!("faults compiled={compiled}");
            let points = fail::snapshot();
            reply.push_str(&format!(" points={}", points.len()));
            for p in points {
                reply.push_str(&format!(" {}={}:calls={}:fired={}", p.name, p.spec, p.calls, p.fired));
            }
            reply
        }
        Some("SET") => match args {
            [_, name, spec] => match fail::configure(name, spec) {
                Ok(()) => format!("fault set {name}"),
                Err(e) => error_reply(format_args!("bad request: {e}")),
            },
            _ => error_reply(format_args!("bad request: FAULTS SET needs a name and a spec")),
        },
        Some("CLEAR") => match args {
            [_] => {
                fail::clear_all();
                "faults cleared".into()
            }
            [_, name] => {
                if fail::clear(name) {
                    format!("fault cleared {name}")
                } else {
                    error_reply(format_args!("bad request: no fault configured at {name:?}"))
                }
            }
            _ => error_reply(format_args!("bad request: FAULTS CLEAR takes at most a name")),
        },
        Some("SEED") => match args {
            [_, seed] => match seed.parse::<u64>() {
                Ok(seed) if fail::enabled() => {
                    fail::set_seed(seed);
                    format!("fault seed {seed}")
                }
                Ok(_) => error_reply(format_args!("bad request: {}", fail::DISABLED)),
                Err(_) => error_reply(format_args!("bad request: FAULTS SEED needs a u64")),
            },
            _ => error_reply(format_args!("bad request: FAULTS SEED needs a u64")),
        },
        Some(other) => {
            error_reply(format_args!("bad request: unknown FAULTS subcommand {other:?}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grepair_core::{compress, GRePairConfig};
    use grepair_hypergraph::Hypergraph;
    use grepair_store::{write_container, GraphStore};

    fn g2g(reps: u32) -> Vec<u8> {
        let (g, _) = Hypergraph::from_simple_edges(
            (2 * reps + 1) as usize,
            (0..reps).flat_map(|i| [(2 * i, 0u32, 2 * i + 1), (2 * i + 1, 1u32, 2 * i + 2)]),
        );
        let out = compress(&g, &GRePairConfig::default());
        let enc = grepair_codec::encode(&out.grammar);
        write_container(&enc.bytes, enc.bit_len)
    }

    fn registry(reps: u32) -> StoreRegistry {
        StoreRegistry::new(GraphStore::from_bytes(&g2g(reps)).unwrap())
    }

    /// Run `input` through a session against a fresh 17-node store and
    /// return the reply bytes as text.
    fn run(input: &str) -> (String, SessionSummary) {
        run_on(&registry(8), input)
    }

    fn run_on(registry: &StoreRegistry, input: &str) -> (String, SessionSummary) {
        let pool = WorkerPool::new(2);
        let mut reader: &[u8] = input.as_bytes();
        let mut out = Vec::new();
        let summary =
            serve_session(registry, &pool, &mut reader, &mut out, &SessionOpts::default())
                .unwrap();
        (String::from_utf8(out).unwrap(), summary)
    }

    #[test]
    fn answers_and_errors_in_request_order() {
        let (out, summary) = run("out 0\nbogus 1\nreach 0 16\n\n# comment\ndegrees\n");
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4, "{out}");
        assert_eq!(lines[0], "1");
        assert!(lines[1].starts_with("error: bad request"), "{out}");
        assert_eq!(lines[2], "true");
        assert!(lines[3].starts_with("min="), "{out}");
        assert_eq!(summary.served, 4);
        assert_eq!(summary.errors, 1);
    }

    #[test]
    fn admin_plane_replies() {
        let (out, summary) = run("PING\nINFO\nSTATS\nQUIT\nout 0\n");
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "pong");
        assert_eq!(
            lines[1],
            "grepair proto=3 namespace=default generation=1 nodes=17 backend=grepair reload_failures=0"
        );
        assert!(lines[2].starts_with("namespaces=1 resident=1 "), "{out}");
        assert_eq!(lines[3], "bye");
        // QUIT ends the session: the query after it is never answered.
        assert_eq!(lines.len(), 4, "{out}");
        assert_eq!(summary.served, 4);
        assert_eq!(summary.reloads, 0);
    }

    #[test]
    fn scoped_stats_render_one_store() {
        let (out, _) = run("out 0\nSTATS default\nSTATS nosuch\n");
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[1].starts_with("generation=1 loads=1 queries=1 "), "{out}");
        assert!(lines[1].contains("backend=grepair"), "{out}");
        assert!(
            lines[1].ends_with("open_failures=0 reload_failures=0 breaker_trips=0 breaker_open=false"),
            "{out}"
        );
        assert!(lines[2].starts_with("error: bad request: unknown namespace"), "{out}");
    }

    #[test]
    fn admin_lines_with_trailing_tokens_error_but_serve_on() {
        let (out, _) = run("PING extra\nUSE\nATTACH onlyname\nout 0\n");
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].starts_with("error: bad request"), "{out}");
        assert!(lines[1].starts_with("error: bad request: USE needs"), "{out}");
        assert!(lines[2].starts_with("error: bad request: ATTACH needs"), "{out}");
        assert_eq!(lines[3], "1");
    }

    #[test]
    fn use_switches_and_prefixes_override_per_line() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("grepair_session_use_{}.g2g", std::process::id()));
        std::fs::write(&path, g2g(16)).unwrap();
        let registry = registry(8);
        let input = format!(
            "ATTACH big {0}\nout 32\nbig:out 32\nUSE big\nout 32\nINFO\ndefault:out 0\nUSE nosuch\nLIST\nDETACH big\nout 32\n",
            path.display()
        );
        let (out, _) = run_on(&registry, &input);
        let lines: Vec<&str> = out.lines().collect();
        // The compressor renumbers nodes, so the expected neighbor list
        // comes from a twin store, not the input file's ids.
        let twin = GraphStore::from_bytes(&g2g(16)).unwrap();
        let out32 = twin.query(&grepair_store::Query::OutNeighbors(32)).unwrap().to_string();
        assert_eq!(lines[0], "attached big generation=1 nodes=33 backend=grepair");
        // Unprefixed goes to default (17 nodes): 32 is out of range...
        assert!(lines[1].starts_with("error:"), "{out}");
        // ...the one-shot prefix hits the 33-node store...
        assert_eq!(lines[2], out32, "{out}");
        assert_eq!(lines[3], "using big");
        // ...and after USE the unprefixed line does too.
        assert_eq!(lines[4], out32, "{out}");
        assert_eq!(
            lines[5],
            "grepair proto=3 namespace=big generation=1 nodes=33 backend=grepair reload_failures=0"
        );
        // A prefix points back at default regardless of the session state.
        assert_eq!(lines[6], "1");
        assert!(lines[7].starts_with("error: bad request: unknown namespace"), "{out}");
        assert_eq!(lines[8], "namespaces=2 big=resident:1 default=resident:1");
        assert_eq!(lines[9], "detached big");
        // The session still points at the detached namespace: error, serve on.
        assert!(lines[10].starts_with("error: bad request: unknown namespace"), "{out}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mixed_namespace_batches_reply_in_input_order() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("grepair_session_mixed_{}.g2g", std::process::id()));
        std::fs::write(&path, g2g(16)).unwrap();
        let registry = registry(8);
        registry.attach("big", path.to_str().unwrap()).unwrap();
        // All lines arrive in one buffered gulp: the batch spans three
        // namespaces (one unknown) and replies must stay line-for-line.
        let input = "out 0\nbig:out 32\nnosuch:out 0\nout 0\nbig:reach 0 32\n";
        let (out, summary) = run_on(&registry, input);
        let lines: Vec<&str> = out.lines().collect();
        let twin = GraphStore::from_bytes(&g2g(16)).unwrap();
        let out32 = twin.query(&grepair_store::Query::OutNeighbors(32)).unwrap().to_string();
        assert_eq!(lines[0], "1");
        assert_eq!(lines[1], out32, "{out}");
        assert!(lines[2].starts_with("error: bad request: unknown namespace"), "{out}");
        assert_eq!(lines[3], "1");
        assert_eq!(lines[4], "true");
        assert_eq!(summary.served, 5);
        assert_eq!(summary.errors, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn invalid_prefixes_fall_through_to_query_parsing() {
        // "has space:out 0" — the pre-colon text is not a valid namespace
        // name, so the whole line is (an unparsable) query.
        let (out, _) = run("has space:out 0\n::\nout 0\n");
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].starts_with("error: bad request"), "{out}");
        assert!(lines[1].starts_with("error: bad request"), "{out}");
        assert_eq!(lines[2], "1");
    }

    #[test]
    fn oversized_lines_error_and_the_next_line_still_parses() {
        let long = "a".repeat(DEFAULT_MAX_LINE * 3);
        let (out, summary) = run(&format!("out 0\n{long}\nout 0\n"));
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "1");
        assert!(lines[1].contains("exceeds"), "{out}");
        assert_eq!(lines[2], "1");
        assert_eq!(summary.errors, 1);
    }

    #[test]
    fn exactly_max_line_is_not_oversized() {
        // A comment line of exactly max_line bytes: skipped, not an error.
        let comment = format!("#{}", " ".repeat(DEFAULT_MAX_LINE - 1));
        let (out, summary) = run(&format!("{comment}\nout 0\n"));
        assert_eq!(out, "1\n");
        assert_eq!(summary.errors, 0);
    }

    #[test]
    fn non_utf8_lines_error_and_serve_on() {
        let registry = registry(8);
        let pool = WorkerPool::new(1);
        let mut input = Vec::new();
        input.extend_from_slice(b"\xff\xfe garbage\n");
        input.extend_from_slice(b"out 0\n");
        let mut reader: &[u8] = &input;
        let mut out = Vec::new();
        serve_session(&registry, &pool, &mut reader, &mut out, &SessionOpts::default()).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains("not valid UTF-8"), "{text}");
        assert_eq!(lines[1], "1");
    }

    #[test]
    fn mid_line_eof_discards_the_partial_line() {
        // "out 1" with no newline: complete lines are answered, the
        // partial one is not (it was never a request).
        let (out, summary) = run("out 0\nout 1");
        assert_eq!(out, "1\n");
        assert_eq!(summary.served, 1);
    }

    #[test]
    fn reload_swaps_generation_mid_session() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("grepair_session_{}.g2g", std::process::id()));
        std::fs::write(&path, g2g(16)).unwrap();
        let registry = registry(8);
        let pool = WorkerPool::new(2);
        let input = format!(
            "in 32\nRELOAD {0}\nin 32\nRELOAD /nonexistent.g2g\nSTATS default\n",
            path.display()
        );
        let mut reader: &[u8] = input.as_bytes();
        let mut out = Vec::new();
        let summary =
            serve_session(&registry, &pool, &mut reader, &mut out, &SessionOpts::default())
                .unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // Node 32 is out of range in generation 1 (17 nodes)...
        assert!(lines[0].starts_with("error:"), "{text}");
        assert_eq!(lines[1], "reloaded generation=2 nodes=33");
        // ...and valid after the reload. The expected ids come from the
        // store itself (the compressor renumbers nodes, so the answer is
        // in derived ids, not input-file ids).
        let reloaded = GraphStore::from_bytes(&g2g(16)).unwrap();
        let expected = reloaded.query(&grepair_store::Query::InNeighbors(32)).unwrap();
        assert_eq!(lines[2], expected.to_string(), "{text}");
        // A failed reload keeps generation 2 serving — and is recorded:
        // STATS surfaces the monotonic count and the last error string.
        assert!(lines[3].starts_with("error:"), "{text}");
        assert!(lines[4].starts_with("generation=2 "), "{text}");
        assert!(lines[4].contains("reload_failures=1"), "{text}");
        assert!(lines[4].contains("last_error="), "{text}");
        assert_eq!(summary.reloads, 1);
        assert_eq!(registry.generation(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reload_acts_on_the_session_namespace() {
        let dir = std::env::temp_dir();
        let a = dir.join(format!("grepair_session_nsa_{}.g2g", std::process::id()));
        let b = dir.join(format!("grepair_session_nsb_{}.g2g", std::process::id()));
        std::fs::write(&a, g2g(4)).unwrap();
        std::fs::write(&b, g2g(12)).unwrap();
        let registry = registry(8);
        registry.attach("a", a.to_str().unwrap()).unwrap();
        let input = format!("USE a\nRELOAD {}\nINFO\nSTATS\n", b.display());
        let (out, summary) = run_on(&registry, &input);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "using a");
        // The session's namespace reloads (and its recorded path moves to
        // the new file); the default namespace's generation is untouched.
        assert_eq!(lines[1], "reloaded generation=2 nodes=25");
        assert_eq!(
            lines[2],
            "grepair proto=3 namespace=a generation=2 nodes=25 backend=grepair reload_failures=0"
        );
        assert!(lines[3].starts_with("namespaces=2 resident=2 "), "{out}");
        assert_eq!(summary.reloads, 1);
        assert_eq!(registry.generation(), 1);
        assert_eq!(registry.generation_of("a").unwrap(), 2);
        let _ = std::fs::remove_file(&a);
        let _ = std::fs::remove_file(&b);
    }

    #[test]
    fn overloaded_pool_sheds_with_busy_lines_and_recovers() {
        let registry = registry(8);
        let pool = WorkerPool::new(1);
        pool.set_shed_watermark(1);
        // Park a job so the pool sits at the watermark while the session
        // flushes, then release it and serve again on the same registry.
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        let (parked_tx, parked_rx) = std::sync::mpsc::channel::<()>();
        std::thread::scope(|s| {
            let pool_ref = &pool;
            s.spawn(move || {
                use grepair_store::BatchExecutor;
                pool_ref.scope(vec![Box::new(move || {
                    parked_tx.send(()).ok();
                    release_rx.recv().ok();
                }) as Box<dyn FnOnce() + Send + '_>]);
            });
            parked_rx.recv().expect("the parked job started");
            let mut reader: &[u8] = b"out 0\nreach 0 16\n";
            let mut out = Vec::new();
            let summary =
                serve_session(&registry, &pool, &mut reader, &mut out, &SessionOpts::default())
                    .unwrap();
            assert_eq!(String::from_utf8(out).unwrap(), "busy\nbusy\n");
            assert_eq!(summary.sheds, 2);
            assert_eq!(summary.served, 2);
            assert_eq!(summary.errors, 0, "a shed is not the client's fault");
            release_tx.send(()).expect("the parked job is waiting");
        });
        assert_eq!(pool.sheds(), 2);
        // Load drained: the same lines now get real answers.
        let mut reader: &[u8] = b"out 0\nreach 0 16\n";
        let mut out = Vec::new();
        let summary =
            serve_session(&registry, &pool, &mut reader, &mut out, &SessionOpts::default())
                .unwrap();
        assert_eq!(String::from_utf8(out).unwrap(), "1\ntrue\n");
        assert_eq!(summary.sheds, 0);
    }

    #[test]
    fn shutdown_flips_the_drain_flag_and_ends_the_session() {
        let registry = registry(8);
        let pool = WorkerPool::new(1);
        let drain = Arc::new(AtomicBool::new(false));
        let opts = SessionOpts { drain: Some(Arc::clone(&drain)), ..SessionOpts::default() };
        let mut reader: &[u8] = b"out 0\nSHUTDOWN\nout 0\n";
        let mut out = Vec::new();
        let summary = serve_session(&registry, &pool, &mut reader, &mut out, &opts).unwrap();
        // The pre-SHUTDOWN batch is answered, `draining` is the last
        // reply, and the line after it is never served.
        assert_eq!(String::from_utf8(out).unwrap(), "1\ndraining\n");
        assert_eq!(summary.served, 2);
        assert!(drain.load(Ordering::Relaxed), "SHUTDOWN must flip the drain flag");
    }

    #[test]
    fn shutdown_without_a_drain_flag_just_ends_the_session() {
        // The serve-file twin: same bytes on the wire, no server to drain.
        let (out, summary) = run("SHUTDOWN\nout 0\n");
        assert_eq!(out, "draining\n");
        assert_eq!(summary.served, 1);
    }

    #[test]
    fn a_flagged_drain_ends_a_streaming_session_between_batches() {
        let registry = registry(8);
        let pool = WorkerPool::new(1);
        let drain = Arc::new(AtomicBool::new(true)); // already draining
        let opts = SessionOpts { drain: Some(Arc::clone(&drain)), ..SessionOpts::default() };
        let mut reader: &[u8] = b"out 0\nout 0\nout 0\n";
        let mut out = Vec::new();
        let summary = serve_session(&registry, &pool, &mut reader, &mut out, &opts).unwrap();
        // The first batch is answered (lines were already buffered), then
        // the session ends instead of reading forever.
        assert!(summary.served >= 1, "{summary:?}");
        assert!(String::from_utf8(out).unwrap().starts_with("1\n"));
    }

    #[test]
    fn faults_verb_lists_and_rejects_by_build() {
        let (out, _) = run("FAULTS\nFAULTS BOGUS\nFAULTS SET\nFAULTS SEED x\nout 0\n");
        let lines: Vec<&str> = out.lines().collect();
        if fail::enabled() {
            assert!(lines[0].starts_with("faults compiled=on points="), "{out}");
        } else {
            assert_eq!(lines[0], "faults compiled=off points=0");
        }
        assert!(lines[1].starts_with("error: bad request: unknown FAULTS subcommand"), "{out}");
        assert!(lines[2].starts_with("error: bad request: FAULTS SET needs"), "{out}");
        assert!(lines[3].starts_with("error: bad request: FAULTS SEED needs"), "{out}");
        assert_eq!(lines[4], "1");
    }

    #[cfg(not(feature = "fail"))]
    #[test]
    fn faults_set_errors_when_compiled_out() {
        let (out, _) = run("FAULTS SET store.open.read always:err\n");
        assert!(out.contains("compiled out"), "{out}");
    }

    #[test]
    fn patch_versions_and_time_travel_over_the_wire() {
        let registry = registry(8);
        // A k2 path store: the k2 codec keeps input node ids, so the wire
        // assertions below can name concrete nodes.
        let (g, _) =
            Hypergraph::from_simple_edges(4, (0..3u32).map(|i| (i, 0u32, i + 1)));
        let file = grepair_store::codec_for("k2").unwrap().encode(&g).unwrap();
        registry.attach_store("k", GraphStore::from_bytes(&file).unwrap()).unwrap();
        let input = "USE k\n\
                     VERSIONS\n\
                     PATCH ADD 3 0 0\n\
                     reach 3 1\n\
                     reach 3 1 @v0\n\
                     VERSIONS\n\
                     PATCH DEL 3 0 0\n\
                     reach 3 1\n\
                     reach 3 1 @v1\n\
                     INFO\n\
                     PATCH DEL 0 5 1\n\
                     PATCH\n\
                     out 0 @v9\n\
                     out 0 @vx\n\
                     default:out 0 @v0\n";
        let (out, summary) = run_on(&registry, input);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "using k");
        // An unpatched namespace still lists its base as v0.
        assert_eq!(lines[1], "versions=1 head=v0 v0=+0-0");
        // Each patch is a new retained version and a generation bump...
        assert_eq!(lines[2], "patched version=1 generation=2 added=1 removed=0");
        // ...the bare query sees the patched head, the pinned one does not.
        assert_eq!(lines[3], "true");
        assert_eq!(lines[4], "false");
        assert_eq!(lines[5], "versions=2 head=v1 v0=+0-0 v1=+1-0");
        // Deleting the patched edge returns the overlay to minimal form.
        assert_eq!(lines[6], "patched version=2 generation=3 added=0 removed=0");
        assert_eq!(lines[7], "false");
        assert_eq!(lines[8], "true");
        assert_eq!(
            lines[9],
            "grepair proto=3 namespace=k generation=3 nodes=4 backend=k2 reload_failures=0"
        );
        // Bad patches and bad pins error per line, never per connection.
        assert!(lines[10].starts_with("error: bad request: patch DEL 0 5 1:"), "{out}");
        assert!(lines[11].starts_with("error: bad request: bad patch"), "{out}");
        assert!(lines[12].contains("unknown version v9"), "{out}");
        assert!(lines[13].contains("bad version suffix"), "{out}");
        // A pinned, prefixed line on a never-patched namespace: @v0 is the
        // base, byte-identical with the unpinned answer.
        assert_eq!(lines[14], "1");
        assert_eq!(lines.len(), 15, "{out}");
        assert_eq!(summary.errors, 4);
    }

    #[test]
    fn large_batches_route_through_the_pool() {
        // 3 × batch-size lines all buffered up front: the session must
        // evaluate in batch-sized chunks through the pool, in order.
        let n = 17u64;
        let opts = SessionOpts { batch: 64, ..SessionOpts::default() };
        let mut input = String::new();
        let mut expected = String::new();
        for i in 0..192u64 {
            input.push_str(&format!("reach 0 {}\n", i % n));
            expected.push_str("true\n");
        }
        let registry = registry(8);
        let pool = WorkerPool::new(4);
        let mut reader: &[u8] = input.as_bytes();
        let mut out = Vec::new();
        let summary = serve_session(&registry, &pool, &mut reader, &mut out, &opts).unwrap();
        assert_eq!(String::from_utf8(out).unwrap(), expected);
        assert_eq!(summary.served, 192);
        let stats = registry.stats();
        assert!(stats.parallel_batches >= 1, "{stats}");
    }
}
