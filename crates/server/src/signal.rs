//! `SIGHUP` → hot reload and `SIGTERM` → graceful drain, with no libc
//! crate in the offline build.
//!
//! The vendored dependency set has no `libc`/`signal-hook`, but every Linux
//! binary already links the platform C library, so the two symbols this
//! needs (`signal`, `raise`) are declared directly. Each handler does the
//! only async-signal-safe thing possible — set an atomic flag — and a
//! watcher thread (see [`crate::Server::spawn_sighup_watcher`] and the
//! drain watcher in [`crate::Server::run`]) turns the flag into a
//! [`grepair_store::StoreRegistry::reload_from`] call or a drain at its
//! leisure. The drain watcher's `stop()` self-connect doubles as the
//! wakeup for *both* front ends: it unblocks the thread-mode `accept(2)`
//! and makes the epoll reactor's listener readable, so a `SIGTERM` drain
//! reaches either loop within one tick (DESIGN.md §10/§11). On non-Unix
//! targets the module compiles to a no-op: `RELOAD` and `SHUTDOWN` over
//! the socket are the portable paths; the signals are a Unix convenience.

#[cfg(unix)]
mod imp {
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Set by the `SIGHUP` handler, drained by [`take_hup`].
    static HUP: AtomicBool = AtomicBool::new(false);

    /// Set by the `SIGTERM` handler, drained by [`take_term`].
    static TERM: AtomicBool = AtomicBool::new(false);

    /// `SIGHUP` is 1 and `SIGTERM` is 15 on every platform this builds
    /// for (POSIX).
    const SIGHUP: i32 = 1;
    const SIGTERM: i32 = 15;

    extern "C" {
        /// ISO C `signal(2)`; the previous handler return value is opaque
        /// to us, hence `usize`.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        /// ISO C `raise(3)` — used by the unit tests to deliver a real
        /// signal to this process.
        #[cfg_attr(not(test), allow(dead_code))]
        fn raise(signum: i32) -> i32;
    }

    extern "C" fn on_hup(_signum: i32) {
        // An atomic store is on the async-signal-safe list; nothing else
        // here is allowed to allocate, lock, or panic.
        HUP.store(true, Ordering::Relaxed);
    }

    extern "C" fn on_term(_signum: i32) {
        TERM.store(true, Ordering::Relaxed);
    }

    pub fn install_hup_handler() {
        // SAFETY: `signal(2)` is an FFI call into the platform C library,
        // which every Linux binary already links. `SIGHUP` is a valid
        // signal number on every POSIX target this compiles for (the
        // module is `cfg(unix)`), and `on_hup` is an `extern "C" fn(i32)`
        // matching the handler ABI `signal` expects; the handler itself
        // only performs an async-signal-safe atomic store. Replacing a
        // previous handler is the intended effect, not a hazard.
        unsafe {
            signal(SIGHUP, on_hup);
        }
    }

    pub fn install_term_handler() {
        // SAFETY: identical argument to `install_hup_handler` — `SIGTERM`
        // is a valid POSIX signal number and `on_term` only performs an
        // async-signal-safe atomic store. Replacing the default handler
        // (which would terminate the process immediately) with the
        // drain-flag store is the entire point.
        unsafe {
            signal(SIGTERM, on_term);
        }
    }

    pub fn take_hup() -> bool {
        HUP.swap(false, Ordering::Relaxed)
    }

    pub fn take_term() -> bool {
        TERM.swap(false, Ordering::Relaxed)
    }

    #[cfg(test)]
    pub fn raise_for_test(signum: i32) {
        // SAFETY: `raise(3)` is an FFI call with no memory preconditions;
        // the tests only pass `SIGHUP`/`SIGTERM` and install our
        // async-signal-safe handlers first, so delivery runs them rather
        // than the default (which would terminate the process).
        unsafe {
            raise(signum);
        }
    }

    #[cfg(test)]
    pub fn raise_hup_for_test() {
        raise_for_test(SIGHUP);
    }

    #[cfg(test)]
    pub fn raise_term_for_test() {
        raise_for_test(SIGTERM);
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install_hup_handler() {}

    pub fn install_term_handler() {}

    pub fn take_hup() -> bool {
        false
    }

    pub fn take_term() -> bool {
        false
    }
}

pub use imp::{install_hup_handler, install_term_handler, take_hup, take_term};

#[cfg(all(test, unix))]
mod tests {
    use super::*;

    #[test]
    fn sighup_sets_the_flag_once() {
        install_hup_handler();
        assert!(!take_hup(), "flag starts clear");
        imp::raise_hup_for_test();
        assert!(take_hup(), "a delivered SIGHUP must set the flag");
        assert!(!take_hup(), "take drains it");
    }

    #[test]
    fn sigterm_sets_its_own_flag() {
        install_hup_handler();
        install_term_handler();
        assert!(!take_term(), "flag starts clear");
        imp::raise_term_for_test();
        assert!(take_term(), "a delivered SIGTERM must set the flag");
        assert!(!take_term(), "take drains it");
        assert!(!take_hup(), "SIGTERM must not leak into the SIGHUP flag");
    }
}
