//! `SIGHUP` → hot reload, with no libc crate in the offline build.
//!
//! The vendored dependency set has no `libc`/`signal-hook`, but every Linux
//! binary already links the platform C library, so the two symbols this
//! needs (`signal`, `raise`) are declared directly. The handler does the
//! only async-signal-safe thing possible — set an atomic flag — and a
//! watcher thread (see [`crate::Server::spawn_sighup_watcher`]) turns the
//! flag into a [`grepair_store::StoreRegistry::reload_from`] call at its
//! leisure. On non-Unix targets the module compiles to a no-op: `RELOAD`
//! over the socket is the portable path, `SIGHUP` is a Unix convenience.

#[cfg(unix)]
mod imp {
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Set by the handler, drained by [`take_hup`].
    static HUP: AtomicBool = AtomicBool::new(false);

    /// `SIGHUP` is 1 on every platform this builds for (POSIX).
    const SIGHUP: i32 = 1;

    extern "C" {
        /// ISO C `signal(2)`; the previous handler return value is opaque
        /// to us, hence `usize`.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        /// ISO C `raise(3)` — used by the unit test to deliver a real
        /// signal to this process.
        #[cfg_attr(not(test), allow(dead_code))]
        fn raise(signum: i32) -> i32;
    }

    extern "C" fn on_hup(_signum: i32) {
        // An atomic store is on the async-signal-safe list; nothing else
        // here is allowed to allocate, lock, or panic.
        HUP.store(true, Ordering::Relaxed);
    }

    pub fn install_hup_handler() {
        // SAFETY: `signal(2)` is an FFI call into the platform C library,
        // which every Linux binary already links. `SIGHUP` is a valid
        // signal number on every POSIX target this compiles for (the
        // module is `cfg(unix)`), and `on_hup` is an `extern "C" fn(i32)`
        // matching the handler ABI `signal` expects; the handler itself
        // only performs an async-signal-safe atomic store. Replacing a
        // previous handler is the intended effect, not a hazard.
        unsafe {
            signal(SIGHUP, on_hup);
        }
    }

    pub fn take_hup() -> bool {
        HUP.swap(false, Ordering::Relaxed)
    }

    #[cfg(test)]
    pub fn raise_hup_for_test() {
        // SAFETY: `raise(3)` is an FFI call with no memory preconditions;
        // `SIGHUP` is a valid signal number, and the test installs
        // `on_hup` first, so delivery runs our async-signal-safe handler
        // rather than the default (which would terminate the process).
        unsafe {
            raise(SIGHUP);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install_hup_handler() {}

    pub fn take_hup() -> bool {
        false
    }
}

pub use imp::{install_hup_handler, take_hup};

#[cfg(all(test, unix))]
mod tests {
    use super::*;

    #[test]
    fn sighup_sets_the_flag_once() {
        install_hup_handler();
        assert!(!take_hup(), "flag starts clear");
        imp::raise_hup_for_test();
        assert!(take_hup(), "a delivered SIGHUP must set the flag");
        assert!(!take_hup(), "take drains it");
    }
}
