//! A fixed-size worker pool that runs *borrowed* batch jobs — the reusable
//! replacement for per-batch `thread::scope` spawns.
//!
//! `GraphStore::query_batch_parallel` spawns fresh threads per batch, which
//! is fine when one batch holds 10k queries and disastrous when a socket
//! connection hands over 4 lines at a time (the spawn cost dwarfs the
//! queries). This pool spawns its threads **once**; every
//! [`WorkerPool::scope`] call ships the batch's jobs through a channel to
//! the resident workers and blocks until all of them finished, which is
//! what lets the jobs borrow the caller's stack (the batch slice, the
//! shared batch context, the answer slots).
//!
//! The lifetime laundering in `scope` is the only `unsafe` in the serving
//! stack; its soundness argument is spelled out at the call site.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar};
use std::thread::JoinHandle;

use grepair_store::BatchExecutor;
use grepair_util::sync::{self, Mutex};

/// A job after lifetime erasure, as shipped through the channel.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// Countdown latch one `scope` call waits on: every submitted job holds a
/// [`LatchGuard`]; `wait` returns once all guards dropped.
struct Latch {
    remaining: Mutex<usize>,
    all_done: Condvar,
    /// Set when a job panicked (the panic is caught on the worker so the
    /// pool survives; `scope` re-raises it on the submitting thread).
    panicked: AtomicBool,
}

impl Latch {
    fn new(count: usize) -> Self {
        Self {
            remaining: Mutex::new(count),
            all_done: Condvar::new(),
            panicked: AtomicBool::new(false),
        }
    }

    fn wait(&self) {
        let mut remaining = self.remaining.lock();
        while *remaining > 0 {
            remaining = sync::wait(&self.all_done, remaining);
        }
    }
}

/// Decrements the latch on drop — so a job releases its slot whether it
/// ran, panicked, or was dropped unexecuted (pool shutdown mid-scope).
struct LatchGuard(Arc<Latch>);

impl Drop for LatchGuard {
    fn drop(&mut self) {
        let mut remaining = self.0.remaining.lock();
        *remaining -= 1;
        if *remaining == 0 {
            self.0.all_done.notify_all();
        }
    }
}

/// A fixed set of resident worker threads fed through one shared channel.
///
/// Implements [`BatchExecutor`], so a server session fans a connection's
/// request batch into `GraphStore::query_batch_on(&queries, &pool)` and the
/// batch machinery (shared batch context, input-ordered answers) runs on
/// reused threads. One pool serves every connection of a server; `scope`
/// may be called from many session threads concurrently — jobs interleave
/// in the channel, each caller waits only on its own latch.
#[derive(Debug)]
pub struct WorkerPool {
    /// `Some` until drop; taking it disconnects the channel, which is the
    /// workers' shutdown signal.
    sender: Option<Sender<Task>>,
    workers: Vec<JoinHandle<()>>,
    /// Jobs submitted but not yet finished (queued + running), across every
    /// concurrent `scope` call. This is the load signal the shed watermark
    /// compares against (DESIGN.md §10).
    inflight: Arc<AtomicUsize>,
    /// Queue-depth watermark: once `inflight` reaches it, [`overloaded`]
    /// reports true and sessions shed new batches with `busy` replies.
    /// `0` disables shedding (the default).
    shed_watermark: AtomicUsize,
    /// Monotonic count of shed queries, bumped by the session layer via
    /// [`note_shed`]; lives here so every session of a server shares it.
    sheds: AtomicU64,
}

/// Decrements the pool's inflight counter on drop, so a job releases its
/// load-signal slot whether it ran, panicked, or was dropped unexecuted.
struct InflightGuard(Arc<AtomicUsize>);

impl Drop for InflightGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Hard ceiling on resident workers. Pool threads are CPU-bound query
/// crunchers — beyond this they only add contention — and an absurd
/// `--threads` request must degrade, not exhaust the OS thread table.
pub const MAX_POOL_THREADS: usize = 1024;

impl WorkerPool {
    /// Spawn resident workers: `threads` of them (clamped to
    /// `1..=`[`MAX_POOL_THREADS`]), or one per available core for `0`.
    ///
    /// Spawning is best-effort: if the OS refuses a thread partway (EAGAIN
    /// under resource pressure), the pool keeps the workers it got — and a
    /// pool that got none runs every [`WorkerPool::scope`] job on the
    /// submitting thread, so serving degrades to sequential instead of
    /// crashing.
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map(usize::from).unwrap_or(1)
        } else {
            threads.min(MAX_POOL_THREADS)
        };
        let (sender, receiver) = channel::<Task>();
        let receiver = Arc::new(Mutex::new(receiver));
        let mut workers = Vec::with_capacity(threads);
        for i in 0..threads {
            let receiver = Arc::clone(&receiver);
            let spawned = std::thread::Builder::new()
                .name(format!("grepair-worker-{i}"))
                .spawn(move || loop {
                    // Hold the receiver lock only for the dequeue, not
                    // while running the task.
                    let task = receiver.lock().recv();
                    match task {
                        Ok(task) => task(),
                        Err(_) => break, // channel closed: pool dropped
                    }
                });
            match spawned {
                Ok(handle) => workers.push(handle),
                Err(e) => {
                    // audited: operator-visible capacity warning; stderr is the server's log surface
                    eprintln!("worker pool capped at {i} of {threads} threads: {e}");
                    break;
                }
            }
        }
        Self {
            sender: Some(sender),
            workers,
            inflight: Arc::new(AtomicUsize::new(0)),
            shed_watermark: AtomicUsize::new(0),
            sheds: AtomicU64::new(0),
        }
    }

    /// Number of resident worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Jobs currently queued or running across all concurrent scopes.
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::Relaxed)
    }

    /// Arm (or, with `0`, disarm) the shed watermark.
    pub fn set_shed_watermark(&self, watermark: usize) {
        self.shed_watermark.store(watermark, Ordering::Relaxed);
    }

    /// True when the queue is at or past the watermark — the session layer
    /// answers `busy` instead of submitting more work (DESIGN.md §10).
    pub fn overloaded(&self) -> bool {
        let watermark = self.shed_watermark.load(Ordering::Relaxed);
        watermark != 0 && self.inflight() >= watermark
    }

    /// Record `n` queries shed by a session; returns nothing — the running
    /// total is [`Self::sheds`].
    pub fn note_shed(&self, n: u64) {
        self.sheds.fetch_add(n, Ordering::Relaxed);
    }

    /// Total queries shed at the watermark since the pool was built.
    pub fn sheds(&self) -> u64 {
        self.sheds.load(Ordering::Relaxed)
    }
}

impl BatchExecutor for WorkerPool {
    fn max_workers(&self) -> usize {
        self.threads()
    }

    /// Run every job on the resident workers and block until all completed.
    ///
    /// # Panics
    ///
    /// If a job panics, the panic is caught on the worker (the pool keeps
    /// serving) and re-raised here once the whole scope has drained.
    fn scope<'env>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        if self.workers.is_empty() {
            // Degraded pool (no thread could be spawned): run on the
            // submitting thread rather than parking forever on the latch.
            // The jobs still count as inflight so the shed watermark sees
            // the load.
            for job in jobs {
                self.inflight.fetch_add(1, Ordering::Relaxed);
                let _inflight = InflightGuard(Arc::clone(&self.inflight));
                job();
            }
            return;
        }
        let latch = Arc::new(Latch::new(jobs.len()));
        for job in jobs {
            // SAFETY: the job borrows data living at least for 'env, which
            // is the caller's frame. We erase that lifetime to ship the job
            // through the 'static channel, and re-establish the guarantee
            // by blocking on the latch below until every job's LatchGuard
            // has dropped — i.e. until each job has either run to
            // completion or been destructed unexecuted. Either way no
            // borrow escapes this call, so the caller's frame outlives all
            // uses. The guard is moved *into* the wrapper task, so even a
            // task dropped on the floor by a shutting-down channel
            // decrements the latch (Box's drop runs the wrapper's field
            // drops).
            let job: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(job) };
            let guard = LatchGuard(Arc::clone(&latch));
            self.inflight.fetch_add(1, Ordering::Relaxed);
            let inflight = InflightGuard(Arc::clone(&self.inflight));
            let latch_for_task = Arc::clone(&latch);
            let task: Task = Box::new(move || {
                let _guard = guard;
                let _inflight = inflight;
                if catch_unwind(AssertUnwindSafe(job)).is_err() {
                    latch_for_task.panicked.store(true, Ordering::Relaxed);
                }
            });
            self.sender
                .as_ref()
                // audited: pool invariant: the sender is Some until Drop takes it
                .expect("pool sender alive until drop")
                .send(task)
                // audited: pool invariant: workers keep the receiver alive until Drop
                .expect("pool workers alive until drop");
        }
        latch.wait();
        if latch.panicked.load(Ordering::Relaxed) {
            // audited: deliberate: re-raises a job panic to the caller after the pool absorbed it
            panic!("a worker-pool job panicked (the pool itself survived)");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.sender.take(); // disconnect: workers drain the queue and exit
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use std::sync::atomic::AtomicUsize;

    fn jobs_from<'env>(
        closures: impl IntoIterator<Item = Box<dyn FnOnce() + Send + 'env>>,
    ) -> Vec<Box<dyn FnOnce() + Send + 'env>> {
        closures.into_iter().collect()
    }

    #[test]
    fn runs_every_job_and_blocks_until_done() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.threads(), 4);
        let counter = AtomicUsize::new(0);
        let jobs = jobs_from((0..100).map(|_| {
            let counter = &counter;
            Box::new(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            }) as Box<dyn FnOnce() + Send + '_>
        }));
        pool.scope(jobs);
        // scope returned ⇒ all 100 ran; no sleep needed.
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn jobs_may_borrow_and_mutate_the_callers_stack() {
        // The whole point of the latch: jobs write into caller-owned slots.
        let pool = WorkerPool::new(3);
        let mut slots = vec![0u64; 32];
        let jobs = jobs_from(slots.chunks_mut(8).enumerate().map(|(i, chunk)| {
            Box::new(move || {
                for (j, slot) in chunk.iter_mut().enumerate() {
                    *slot = (i * 8 + j) as u64 * 2;
                }
            }) as Box<dyn FnOnce() + Send + '_>
        }));
        pool.scope(jobs);
        assert_eq!(slots, (0..32u64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn threads_are_reused_across_scopes() {
        let pool = WorkerPool::new(2);
        let seen = Mutex::new(BTreeSet::new());
        for _ in 0..20 {
            let jobs = jobs_from((0..4).map(|_| {
                let seen = &seen;
                Box::new(move || {
                    seen.lock().insert(std::thread::current().name().map(String::from));
                }) as Box<dyn FnOnce() + Send + '_>
            }));
            pool.scope(jobs);
        }
        // 80 jobs over 20 scopes all landed on the same 2 resident threads.
        let seen = seen.into_inner();
        assert!(seen.len() <= 2, "{seen:?}");
        assert!(seen.iter().all(|name| {
            name.as_deref().is_some_and(|n| n.starts_with("grepair-worker-"))
        }));
    }

    #[test]
    fn concurrent_scopes_from_many_threads_share_one_pool() {
        let pool = WorkerPool::new(4);
        let total = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..6 {
                let pool = &pool;
                let total = &total;
                s.spawn(move || {
                    for _ in 0..10 {
                        let jobs = jobs_from((0..5).map(|_| {
                            Box::new(move || {
                                total.fetch_add(1, Ordering::Relaxed);
                            })
                                as Box<dyn FnOnce() + Send + '_>
                        }));
                        pool.scope(jobs);
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 6 * 10 * 5);
    }

    #[test]
    fn empty_scope_returns_immediately() {
        let pool = WorkerPool::new(2);
        pool.scope(Vec::new());
    }

    #[test]
    fn zero_threads_means_available_parallelism() {
        let pool = WorkerPool::new(0);
        assert!(pool.threads() >= 1);
    }

    #[test]
    fn absurd_thread_requests_are_clamped_not_fatal() {
        // `--threads 10000000` must degrade to the cap, not exhaust the OS
        // thread table or panic.
        let pool = WorkerPool::new(10_000_000);
        assert!(pool.threads() <= MAX_POOL_THREADS);
        assert!(pool.threads() >= 1, "spawning within the cap succeeds here");
        let ran = AtomicUsize::new(0);
        pool.scope(jobs_from((0..4).map(|_| {
            let ran = &ran;
            Box::new(move || {
                ran.fetch_add(1, Ordering::Relaxed);
            }) as Box<dyn FnOnce() + Send + '_>
        })));
        assert_eq!(ran.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn watermark_trips_under_load_and_clears_when_it_drains() {
        let pool = Arc::new(WorkerPool::new(1));
        assert!(!pool.overloaded(), "disarmed watermark never sheds");
        pool.set_shed_watermark(1);
        assert!(!pool.overloaded(), "idle pool is below any watermark");

        // Park a job on the single worker so inflight stays at 1 while we
        // probe the watermark from this thread.
        let (release_tx, release_rx) = channel::<()>();
        let (parked_tx, parked_rx) = channel::<()>();
        let background = {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || {
                pool.scope(jobs_from([Box::new(move || {
                    parked_tx.send(()).ok();
                    release_rx.recv().ok();
                }) as Box<dyn FnOnce() + Send + '_>]));
            })
        };
        parked_rx.recv().expect("the parked job started");
        assert_eq!(pool.inflight(), 1);
        assert!(pool.overloaded(), "inflight at the watermark sheds");

        release_tx.send(()).expect("the parked job is waiting");
        background.join().expect("background scope finished");
        assert_eq!(pool.inflight(), 0, "scope returned ⇒ load drained");
        assert!(!pool.overloaded());

        pool.set_shed_watermark(0);
        pool.note_shed(3);
        pool.note_shed(2);
        assert_eq!(pool.sheds(), 5);
    }

    #[test]
    fn a_panicking_job_is_reported_and_the_pool_survives() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(jobs_from([
                Box::new(|| panic!("job boom")) as Box<dyn FnOnce() + Send + '_>,
            ]));
        }));
        assert!(result.is_err(), "the panic must reach the submitter");
        // The pool still works afterwards.
        let ran = AtomicUsize::new(0);
        pool.scope(jobs_from((0..8).map(|_| {
            let ran = &ran;
            Box::new(move || {
                ran.fetch_add(1, Ordering::Relaxed);
            }) as Box<dyn FnOnce() + Send + '_>
        })));
        assert_eq!(ran.load(Ordering::Relaxed), 8);
    }
}
