//! `grepair-server` — serve compressed graph containers over TCP.
//!
//! ```text
//! grepair-server <in.g2g> [--addr HOST:PORT] [--threads N] [--batch N] [--max-line N]
//!                [--attach NAME=PATH]... [--memory-budget BYTES]
//! ```
//!
//! Binds (default `127.0.0.1:0` — an OS-assigned ephemeral port), prints
//! one `listening <addr> proto=... namespaces=... generation=...` line to
//! stdout, and serves the wire protocol of DESIGN.md §6/§8 until killed.
//! The positional container is the `default` namespace; every `--attach`
//! registers a further tenant that is opened lazily on its first query,
//! and `--memory-budget` caps resident container bytes with LRU eviction.
//! `SIGHUP` (or the `RELOAD` admin command) hot-swaps a freshly loaded
//! copy of a namespace's container in without dropping connections. The
//! same serving loop is reachable as `grepair store serve`;
//! `grepair store serve-file` remains the socket-free offline path.

use std::process::ExitCode;

const USAGE: &str = "usage:
  grepair-server <in.g2g> [--addr HOST:PORT] [--threads N] [--batch N] [--max-line N]
                 [--attach NAME=PATH]... [--memory-budget BYTES] [--io epoll|threads]

  --addr           bind address (default 127.0.0.1:0 — ephemeral port, printed on stdout)
  --threads        worker-pool size (default 0 = one per core)
  --batch          per-connection batch cap in lines (default 1024)
  --max-line       longest accepted request line in bytes (default 65536)
  --attach         register another namespace (repeatable; opened on first query)
  --memory-budget  resident container-byte cap; least-recently-hit stores evict
  --io             socket front end: threads (default, one session thread per
                   connection) or epoll (one readiness loop, flat thread count;
                   linux only)";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match grepair_server::run_cli(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}
