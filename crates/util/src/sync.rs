//! Poison-transparent lock wrappers — the workspace's only lock surface.
//!
//! `std::sync::{Mutex, RwLock}` poison their data when a holder panics,
//! which forces every acquisition site into `.lock().unwrap()` — a panic
//! path of exactly the kind the zero-panic boundary (DESIGN.md §2) bans,
//! and one that *amplifies* a single panic into a poisoned-forever server.
//! These wrappers recover the guard from a poisoned lock instead: the
//! workspace policy is that panics never cross the serving boundary in the
//! first place (every worker job runs under `catch_unwind`), so the data a
//! panicking holder left behind is either consistent (caches: the entry
//! simply isn't inserted) or re-derived (registry slots: the next open
//! replaces it). Propagating the poison could only turn one failed request
//! into a dead process.
//!
//! `grepair-analyze` rule `lock-poisoning` (DESIGN.md §9) flags any
//! `.lock()/.read()/.write()` followed by `.unwrap()`/`.expect(` in the
//! workspace, which is what keeps new code on this wrapper instead of the
//! std types.

use std::sync::{MutexGuard, PoisonError, RwLockReadGuard, RwLockWriteGuard};

/// [`std::sync::Mutex`] with poison-transparent acquisition: [`Mutex::lock`]
/// returns the guard directly, recovering it from a poisoned lock.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value` in a new unlocked mutex.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consume the mutex and return its data, poison-transparently.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the calling thread. A lock poisoned by a
    /// panicking holder is recovered, not propagated — see the module docs
    /// for why that is the right policy here.
    ///
    /// The guard is the plain `std` guard, so it composes with
    /// [`std::sync::Condvar`] (re-acquire through [`crate::sync::wait`]).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// [`std::sync::RwLock`] with poison-transparent acquisition.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap `value` in a new unlocked lock.
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consume the lock and return its data, poison-transparently.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, recovering from poison.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire the exclusive write guard, recovering from poison.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Block on `condvar` releasing `guard`, and re-acquire poison-transparently
/// — the [`std::sync::Condvar::wait`] companion to [`Mutex::lock`].
pub fn wait<'a, T>(
    condvar: &std::sync::Condvar,
    guard: MutexGuard<'a, T>,
) -> MutexGuard<'a, T> {
    condvar.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1u32]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }

    #[test]
    fn poisoned_mutex_still_serves() {
        let m = Mutex::new(7u32);
        let _ = catch_unwind(AssertUnwindSafe(|| {
            let _guard = m.lock();
            panic!("poison the lock");
        }));
        // The std type would now error every acquisition; the wrapper
        // recovers the guard and the data written before the panic.
        assert_eq!(*m.lock(), 7);
        *m.lock() = 8;
        assert_eq!(m.into_inner(), 8);
    }

    #[test]
    fn poisoned_rwlock_still_serves() {
        let l = RwLock::new(7u32);
        let _ = catch_unwind(AssertUnwindSafe(|| {
            let _guard = l.write();
            panic!("poison the lock");
        }));
        assert_eq!(*l.read(), 7);
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn condvar_wait_wakes() {
        use std::sync::Condvar;
        let ready = Mutex::new(false);
        let cv = Condvar::new();
        std::thread::scope(|s| {
            s.spawn(|| {
                *ready.lock() = true;
                cv.notify_all();
            });
            let mut guard = ready.lock();
            while !*guard {
                guard = wait(&cv, guard);
            }
        });
    }
}
