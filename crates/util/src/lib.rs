//! Small shared utilities for the gRePair workspace.
//!
//! The main export is an FxHash-style hasher ([`FxHashMap`], [`FxHashSet`]):
//! the compressor keys hash tables by small integers (node IDs, edge IDs,
//! digram signatures) for which SipHash is needlessly slow, and the offline
//! crate set does not include `rustc-hash`, so we provide the same
//! multiplicative hash here.

#![forbid(unsafe_code)]

pub mod args;
pub mod fail;
pub mod fmt;
pub mod fxhash;
pub mod sync;

pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
