//! A fast, non-cryptographic hasher in the style of rustc's FxHash.
//!
//! This is the classic Firefox/rustc hash: state is folded one `usize` at a
//! time with a rotate, xor, and multiply by a large odd constant. It is not
//! HashDoS resistant — fine here, since every key we hash is internally
//! generated (node/edge IDs, digram signatures), never attacker-controlled.

use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit seed constant, `floor(2^64 / phi)`, same as rustc-hash.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Streaming FxHash state.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut bytes = bytes;
        while bytes.len() >= 8 {
            let (chunk, rest) = bytes.split_at(8);
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
            bytes = rest;
        }
        if bytes.len() >= 4 {
            let (chunk, rest) = bytes.split_at(4);
            self.add_to_hash(u32::from_le_bytes(chunk.try_into().unwrap()) as u64);
            bytes = rest;
        }
        for &b in bytes {
            self.add_to_hash(b as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}


/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` with FxHash.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` with FxHash.
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_one<T: Hash>(v: T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_one(42u64), hash_one(42u64));
        assert_eq!(hash_one("digram"), hash_one("digram"));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_one(1u64), hash_one(2u64));
        assert_ne!(hash_one((1u32, 2u32)), hash_one((2u32, 1u32)));
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&999], 1998);

        let mut s: FxHashSet<(u32, u32)> = FxHashSet::default();
        s.insert((1, 2));
        assert!(s.contains(&(1, 2)));
        assert!(!s.contains(&(2, 1)));
    }

    #[test]
    fn byte_streams_of_different_lengths_differ() {
        let h = |b: &[u8]| {
            let mut hasher = FxHasher::default();
            hasher.write(b);
            hasher.finish()
        };
        assert_ne!(h(b"abc"), h(b"abcd"));
        assert_ne!(h(b"abcdefgh"), h(b"abcdefgi"));
        assert_ne!(h(b"abcdefghijkl"), h(b"abcdefghijkm"));
    }
}
