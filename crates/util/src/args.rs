//! Shared argv helpers for the workspace's binaries (`grepair`,
//! `grepair-server`), so every front end parses and rejects flags with the
//! same contract and the same error wording.

/// The value following `flag` in `args`, if present. For a repeatable
/// flag, the first occurrence; see [`flag_values`] for all of them.
pub fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}

/// Every value following an occurrence of `flag` in `args`, in order —
/// for repeatable flags like the server's `--attach NAME=PATH`.
pub fn flag_values(args: &[String], flag: &str) -> Vec<String> {
    args.iter()
        .enumerate()
        .filter(|(_, a)| *a == flag)
        .filter_map(|(i, _)| args.get(i + 1))
        .cloned()
        .collect()
}

/// Check that `args` is exactly a sequence of `known` value-taking flags,
/// each followed by its value — a typoed or value-less flag is a usage
/// error, not a silent no-op.
pub fn validate_value_flags(args: &[String], known: &[&str]) -> Result<(), String> {
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if !known.contains(&a.as_str()) {
            return Err(format!("unexpected argument {a:?}"));
        }
        if i + 1 >= args.len() {
            return Err(format!("flag {a} needs a value"));
        }
        i += 2;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flag_values_are_positional_pairs() {
        let a = args(&["--map", "m", "-o", "x"]);
        assert_eq!(flag_value(&a, "-o").as_deref(), Some("x"));
        assert_eq!(flag_value(&a, "--map").as_deref(), Some("m"));
        assert_eq!(flag_value(&a, "--missing"), None);
        assert_eq!(flag_value(&args(&["-o"]), "-o"), None, "value-less flag");
    }

    #[test]
    fn repeated_flags_collect_every_value_in_order() {
        let a = args(&["--attach", "a=1", "-o", "x", "--attach", "b=2"]);
        assert_eq!(flag_values(&a, "--attach"), vec!["a=1".to_string(), "b=2".to_string()]);
        assert_eq!(flag_value(&a, "--attach").as_deref(), Some("a=1"), "first wins");
        assert!(flag_values(&a, "--missing").is_empty());
        assert!(flag_values(&args(&["--attach"]), "--attach").is_empty(), "value-less");
    }

    #[test]
    fn unknown_and_value_less_flags_are_rejected() {
        let known = ["-o", "--map"];
        assert!(validate_value_flags(&args(&[]), &known).is_ok());
        assert!(validate_value_flags(&args(&["--map", "m", "-o", "x"]), &known).is_ok());
        assert!(validate_value_flags(&args(&["--mpa", "m"]), &known).is_err());
        assert!(validate_value_flags(&args(&["-o"]), &known).is_err());
        assert!(validate_value_flags(&args(&["stray", "-o", "x"]), &known).is_err());
    }
}
