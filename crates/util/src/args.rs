//! Shared argv helpers for the workspace's binaries (`grepair`,
//! `grepair-server`), so every front end parses and rejects flags with the
//! same contract and the same error wording.

/// The value following `flag` in `args`, if present.
pub fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}

/// Check that `args` is exactly a sequence of `known` value-taking flags,
/// each followed by its value — a typoed or value-less flag is a usage
/// error, not a silent no-op.
pub fn validate_value_flags(args: &[String], known: &[&str]) -> Result<(), String> {
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if !known.contains(&a.as_str()) {
            return Err(format!("unexpected argument {a:?}"));
        }
        if i + 1 >= args.len() {
            return Err(format!("flag {a} needs a value"));
        }
        i += 2;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flag_values_are_positional_pairs() {
        let a = args(&["--map", "m", "-o", "x"]);
        assert_eq!(flag_value(&a, "-o").as_deref(), Some("x"));
        assert_eq!(flag_value(&a, "--map").as_deref(), Some("m"));
        assert_eq!(flag_value(&a, "--missing"), None);
        assert_eq!(flag_value(&args(&["-o"]), "-o"), None, "value-less flag");
    }

    #[test]
    fn unknown_and_value_less_flags_are_rejected() {
        let known = ["-o", "--map"];
        assert!(validate_value_flags(&args(&[]), &known).is_ok());
        assert!(validate_value_flags(&args(&["--map", "m", "-o", "x"]), &known).is_ok());
        assert!(validate_value_flags(&args(&["--mpa", "m"]), &known).is_err());
        assert!(validate_value_flags(&args(&["-o"]), &known).is_err());
        assert!(validate_value_flags(&args(&["stray", "-o", "x"]), &known).is_err());
    }
}
