//! Formatting helpers for experiment reports.

/// Render a byte count with a binary-prefix unit, e.g. `1.24 MiB`.
pub fn human_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.2} {}", UNITS[unit])
    }
}

/// Render a count with thousands separators, e.g. `2,394,385`.
pub fn human_count(n: u64) -> String {
    let digits = n.to_string();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    for (i, c) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Bits-per-edge given a size in bits and an edge count.
///
/// This is the headline metric of the paper's evaluation (§IV). Returns
/// `f64::INFINITY` for empty graphs so callers can't divide by zero silently.
pub fn bits_per_edge(bits: u64, edges: u64) -> f64 {
    if edges == 0 {
        f64::INFINITY
    } else {
        bits as f64 / edges as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_small_values_are_exact() {
        assert_eq!(human_bytes(0), "0 B");
        assert_eq!(human_bytes(1023), "1023 B");
    }

    #[test]
    fn bytes_scaled_units() {
        assert_eq!(human_bytes(1024), "1.00 KiB");
        assert_eq!(human_bytes(1_300_000), "1.24 MiB");
    }

    #[test]
    fn counts_grouped() {
        assert_eq!(human_count(0), "0");
        assert_eq!(human_count(999), "999");
        assert_eq!(human_count(1000), "1,000");
        assert_eq!(human_count(2_394_385), "2,394,385");
    }

    #[test]
    fn bpe_basic() {
        assert_eq!(bits_per_edge(100, 10), 10.0);
        assert!(bits_per_edge(100, 0).is_infinite());
    }
}
