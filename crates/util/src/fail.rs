//! Named failpoints: deterministic fault injection for the serving stack
//! (DESIGN.md §10).
//!
//! A failpoint is a named site in production code — `store.open.read`,
//! `registry.cold_open`, `reload.swap`, `session.write`, `pool.submit`, … —
//! that the code consults via [`point`]. In a default build the whole
//! module compiles to a no-op ([`point`] is an inline `Ok(())` with no
//! registry behind it, so the optimizer deletes the call); with the `fail`
//! cargo feature enabled, each point can be armed with a *spec* describing
//! when it fires and what happens:
//!
//! ```text
//! spec     := [ trigger ":" ] actions
//! trigger  := "always" | "first(N)" | "nth(N)" | "1in(N)"
//! actions  := action { "+" action }
//! action   := "err" | "delay(MS)"
//! ```
//!
//! * `always` (the default when no trigger is given) fires on every call,
//!   `first(N)` on calls 1..=N, `nth(N)` on call N exactly, and `1in(N)`
//!   with probability 1/N from a *seeded* per-point PRNG — so a chaos run
//!   replays bit-identically from its seed.
//! * `err` makes [`point`] return an injected-fault error (the call site
//!   maps it into its own error type — an I/O failure, a refused submit);
//!   `delay(MS)` sleeps the calling thread, which is how race windows
//!   (cold open vs eviction) are widened deterministically.
//!
//! Points are configured from the `GREPAIR_FAILPOINTS` environment
//! variable (`name=spec;name=spec`, seed from `GREPAIR_FAIL_SEED`), from
//! the server's `--failpoints`/`--fail-seed` flags, or live over the wire
//! protocol's `FAULTS` admin verb. All of those funnel into [`configure`].

/// Longest accepted `delay(MS)` — a misconfigured point must not wedge a
/// server for minutes.
pub const MAX_DELAY_MS: u64 = 10_000;

/// The error every configuration call returns in a build without the
/// `fail` feature.
pub const DISABLED: &str = "failpoints compiled out (rebuild with --features fail)";

/// One configured point's observable state, as reported by [`snapshot`]
/// (the `FAULTS` admin verb's listing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointStatus {
    /// The failpoint name.
    pub name: String,
    /// The spec it was configured with, normalized.
    pub spec: String,
    /// Times [`point`] was evaluated for this name since configuration.
    pub calls: u64,
    /// Times it fired (ran its actions).
    pub fired: u64,
}

#[cfg(feature = "fail")]
mod imp {
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, OnceLock};

    use crate::sync::{Mutex, RwLock};

    use super::{PointStatus, MAX_DELAY_MS};

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Trigger {
        Always,
        First(u64),
        Nth(u64),
        OneIn(u64),
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Action {
        Err,
        Delay(u64),
    }

    #[derive(Debug)]
    struct Point {
        spec: String,
        trigger: Trigger,
        actions: Vec<Action>,
        calls: AtomicU64,
        fired: AtomicU64,
        /// xorshift64* state for `1in(N)`; seeded from the global seed and
        /// the point's name, so runs replay deterministically.
        rng: Mutex<u64>,
    }

    static POINTS: OnceLock<RwLock<BTreeMap<String, Arc<Point>>>> = OnceLock::new();
    static SEED: AtomicU64 = AtomicU64::new(0);

    fn registry() -> &'static RwLock<BTreeMap<String, Arc<Point>>> {
        POINTS.get_or_init(|| RwLock::new(BTreeMap::new()))
    }

    /// splitmix64 — stirs the seed and name hash into a full-entropy,
    /// never-zero xorshift state.
    fn splitmix64(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }

    fn point_seed(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a over the name
        for b in name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
        splitmix64(SEED.load(Ordering::Relaxed) ^ h) | 1
    }

    fn next_rand(state: &Mutex<u64>) -> u64 {
        let mut s = state.lock();
        let mut x = *s;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *s = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn parse_count(text: &str, inside: &str) -> Result<u64, String> {
        let body = inside
            .strip_prefix('(')
            .and_then(|r| r.strip_suffix(')'))
            .ok_or_else(|| format!("bad failpoint spec {text:?}: want NAME(N)"))?;
        let n: u64 = body
            .parse()
            .map_err(|e| format!("bad failpoint spec {text:?}: {e}"))?;
        if n == 0 {
            return Err(format!("bad failpoint spec {text:?}: count must be >= 1"));
        }
        Ok(n)
    }

    fn parse_trigger(text: &str) -> Result<Trigger, String> {
        if text == "always" {
            Ok(Trigger::Always)
        } else if let Some(rest) = text.strip_prefix("first") {
            Ok(Trigger::First(parse_count(text, rest)?))
        } else if let Some(rest) = text.strip_prefix("nth") {
            Ok(Trigger::Nth(parse_count(text, rest)?))
        } else if let Some(rest) = text.strip_prefix("1in") {
            Ok(Trigger::OneIn(parse_count(text, rest)?))
        } else {
            Err(format!(
                "bad failpoint trigger {text:?}: want always, first(N), nth(N), or 1in(N)"
            ))
        }
    }

    fn parse_actions(text: &str) -> Result<Vec<Action>, String> {
        text.split('+')
            .map(|a| {
                if a == "err" {
                    Ok(Action::Err)
                } else if let Some(rest) = a.strip_prefix("delay") {
                    let ms = parse_count(a, rest)?;
                    if ms > MAX_DELAY_MS {
                        return Err(format!(
                            "bad failpoint action {a:?}: delay capped at {MAX_DELAY_MS} ms"
                        ));
                    }
                    Ok(Action::Delay(ms))
                } else {
                    Err(format!("bad failpoint action {a:?}: want err or delay(MS)"))
                }
            })
            .collect()
    }

    fn parse_spec(spec: &str) -> Result<(Trigger, Vec<Action>), String> {
        let (trigger, actions) = match spec.split_once(':') {
            Some((t, a)) => (parse_trigger(t)?, a),
            None => (Trigger::Always, spec),
        };
        Ok((trigger, parse_actions(actions)?))
    }

    pub fn enabled() -> bool {
        true
    }

    pub fn configure(name: &str, spec: &str) -> Result<(), String> {
        if name.is_empty() || name.contains(|c: char| c.is_whitespace() || c == '=' || c == ';') {
            return Err(format!("bad failpoint name {name:?}"));
        }
        let (trigger, actions) = parse_spec(spec)?;
        let point = Arc::new(Point {
            spec: spec.to_string(),
            trigger,
            actions,
            calls: AtomicU64::new(0),
            fired: AtomicU64::new(0),
            rng: Mutex::new(point_seed(name)),
        });
        registry().write().insert(name.to_string(), point);
        Ok(())
    }

    pub fn configure_list(specs: &str) -> Result<(), String> {
        for entry in specs.split(';').filter(|e| !e.trim().is_empty()) {
            let (name, spec) = entry
                .trim()
                .split_once('=')
                .ok_or_else(|| format!("bad failpoint entry {entry:?}: want NAME=SPEC"))?;
            configure(name, spec)?;
        }
        Ok(())
    }

    pub fn set_seed(seed: u64) {
        SEED.store(seed, Ordering::Relaxed);
    }

    pub fn clear(name: &str) -> bool {
        registry().write().remove(name).is_some()
    }

    pub fn clear_all() {
        registry().write().clear();
    }

    pub fn snapshot() -> Vec<PointStatus> {
        registry()
            .read()
            .iter()
            .map(|(name, p)| PointStatus {
                name: name.clone(),
                spec: p.spec.clone(),
                calls: p.calls.load(Ordering::Relaxed),
                fired: p.fired.load(Ordering::Relaxed),
            })
            .collect()
    }

    pub fn point(name: &str) -> Result<(), String> {
        // Unarmed (the overwhelmingly common case, even in a fail build):
        // one read-locked map probe, no state change.
        let Some(p) = registry().read().get(name).cloned() else {
            return Ok(());
        };
        let ordinal = p.calls.fetch_add(1, Ordering::Relaxed) + 1;
        let fire = match p.trigger {
            Trigger::Always => true,
            Trigger::First(n) => ordinal <= n,
            Trigger::Nth(n) => ordinal == n,
            Trigger::OneIn(n) => next_rand(&p.rng).is_multiple_of(n),
        };
        if !fire {
            return Ok(());
        }
        p.fired.fetch_add(1, Ordering::Relaxed);
        let mut outcome = Ok(());
        for action in &p.actions {
            match action {
                Action::Delay(ms) => {
                    std::thread::sleep(std::time::Duration::from_millis(*ms))
                }
                Action::Err => outcome = Err(format!("injected fault at failpoint {name}")),
            }
        }
        outcome
    }
}

#[cfg(not(feature = "fail"))]
mod imp {
    use super::{PointStatus, DISABLED};

    pub fn enabled() -> bool {
        false
    }

    pub fn configure(_name: &str, _spec: &str) -> Result<(), String> {
        Err(DISABLED.into())
    }

    pub fn configure_list(_specs: &str) -> Result<(), String> {
        Err(DISABLED.into())
    }

    pub fn set_seed(_seed: u64) {}

    pub fn clear(_name: &str) -> bool {
        false
    }

    pub fn clear_all() {}

    pub fn snapshot() -> Vec<PointStatus> {
        Vec::new()
    }

    /// The whole fault layer in a default build: an inline `Ok(())` the
    /// optimizer deletes, so armed-path costs exist only behind `--features
    /// fail` (the release CI step checks the symbol is gone).
    #[inline(always)]
    pub fn point(_name: &str) -> Result<(), String> {
        Ok(())
    }
}

pub use imp::{clear, clear_all, configure, configure_list, enabled, point, set_seed, snapshot};

/// Exclusive, self-cleaning access to the process-global failpoint
/// registry, for tests. Hold it for the whole test; see [`scoped`].
///
/// On drop it clears every armed point and resets the seed, so a panicking
/// test cannot leak a live fault schedule into whatever test the harness
/// runs next — the PR 8 footgun this type exists to close.
#[must_use = "the guard serializes and cleans up failpoint state; bind it for the test's lifetime"]
pub struct ScopedFaults {
    _gate: std::sync::MutexGuard<'static, ()>,
}

impl Drop for ScopedFaults {
    fn drop(&mut self) {
        clear_all();
        set_seed(0);
    }
}

/// Take exclusive ownership of the failpoint registry for one test.
///
/// Failpoints are process-global (by design: a server's `FAULTS` verb and
/// `--failpoints` flag must reach every thread), which makes them a
/// cross-test bleed hazard under the parallel test harness. `scoped()`
/// serializes the armed section on a process-wide gate and guarantees a
/// clean registry on entry *and* on exit (even on panic):
///
/// ```
/// let _faults = grepair_util::fail::scoped();
/// // configure points, run the chaotic part...
/// // drop clears everything armed, pass or fail
/// ```
///
/// Works in a no-`fail` build too (the gate still serializes; the clears
/// are no-ops), so `#[cfg]`-free test code can use it unconditionally.
pub fn scoped() -> ScopedFaults {
    static GATE: std::sync::OnceLock<crate::sync::Mutex<()>> = std::sync::OnceLock::new();
    let gate = GATE.get_or_init(|| crate::sync::Mutex::new(())).lock();
    clear_all();
    set_seed(0);
    ScopedFaults { _gate: gate }
}

/// Environment variable holding `name=spec;name=spec` failpoint configs.
pub const ENV_FAILPOINTS: &str = "GREPAIR_FAILPOINTS";

/// Environment variable holding the deterministic seed for `1in(N)`.
pub const ENV_SEED: &str = "GREPAIR_FAIL_SEED";

/// Arm failpoints from `GREPAIR_FAILPOINTS` / `GREPAIR_FAIL_SEED`.
/// Returns `Err` if the env vars are set but unusable — present in a
/// build without the `fail` feature, or malformed. With neither variable
/// set this is a no-op `Ok`.
pub fn init_from_env() -> Result<(), String> {
    if let Ok(seed) = std::env::var(ENV_SEED) {
        let seed: u64 = seed
            .parse()
            .map_err(|e| format!("bad {ENV_SEED}: {e}"))?;
        if !enabled() {
            return Err(format!("{ENV_SEED} set but {DISABLED}"));
        }
        set_seed(seed);
    }
    if let Ok(specs) = std::env::var(ENV_FAILPOINTS) {
        if !enabled() {
            return Err(format!("{ENV_FAILPOINTS} set but {DISABLED}"));
        }
        configure_list(&specs).map_err(|e| format!("bad {ENV_FAILPOINTS}: {e}"))?;
    }
    Ok(())
}

#[cfg(all(test, feature = "fail"))]
mod tests {
    use super::*;

    /// Tests share one process-global registry, so every test uses its own
    /// point names and never calls `clear_all`.
    #[test]
    fn unarmed_points_pass() {
        assert_eq!(point("test.never.configured"), Ok(()));
    }

    #[test]
    fn always_err_fires_every_call() {
        configure("test.always", "err").unwrap();
        for _ in 0..3 {
            assert!(point("test.always").is_err());
        }
        let status = snapshot()
            .into_iter()
            .find(|s| s.name == "test.always")
            .unwrap();
        assert_eq!((status.calls, status.fired), (3, 3));
        assert_eq!(status.spec, "err");
        assert!(clear("test.always"));
        assert_eq!(point("test.always"), Ok(()));
    }

    #[test]
    fn first_n_fires_then_heals() {
        configure("test.first", "first(2):err").unwrap();
        assert!(point("test.first").is_err());
        assert!(point("test.first").is_err());
        assert!(point("test.first").is_ok(), "third call heals");
        assert!(point("test.first").is_ok());
        clear("test.first");
    }

    #[test]
    fn nth_fires_exactly_once() {
        configure("test.nth", "nth(3):err").unwrap();
        assert!(point("test.nth").is_ok());
        assert!(point("test.nth").is_ok());
        assert!(point("test.nth").is_err());
        assert!(point("test.nth").is_ok());
        clear("test.nth");
    }

    #[test]
    fn one_in_n_is_seeded_and_deterministic() {
        let run = |seed: u64| -> Vec<bool> {
            set_seed(seed);
            configure("test.onein", "1in(3):err").unwrap();
            let fired = (0..64).map(|_| point("test.onein").is_err()).collect();
            clear("test.onein");
            fired
        };
        let a = run(7);
        let b = run(7);
        let c = run(8);
        assert_eq!(a, b, "same seed replays bit-identically");
        assert_ne!(a, c, "a different seed gives a different schedule");
        let hits = a.iter().filter(|&&f| f).count();
        assert!(hits > 4 && hits < 50, "roughly 1 in 3 of 64: {hits}");
        set_seed(0);
    }

    #[test]
    fn delay_sleeps_and_composes_with_err() {
        configure("test.delay", "delay(20)+err").unwrap();
        let start = std::time::Instant::now();
        assert!(point("test.delay").is_err());
        assert!(start.elapsed() >= std::time::Duration::from_millis(20));
        clear("test.delay");
    }

    #[test]
    fn list_configuration_arms_many_points() {
        configure_list("test.list.a=err; test.list.b=first(1):delay(1)").unwrap();
        assert!(point("test.list.a").is_err());
        assert!(point("test.list.b").is_ok());
        clear("test.list.a");
        clear("test.list.b");
    }

    #[test]
    fn malformed_specs_are_rejected() {
        for bad in [
            "first:err",
            "first(0):err",
            "1in():err",
            "boom",
            "delay(999999999)",
            "nth(two):err",
            "",
        ] {
            assert!(configure("test.bad", bad).is_err(), "{bad:?}");
        }
        assert!(configure_list("noequals").is_err());
        assert!(configure("has space", "err").is_err());
        assert_eq!(point("test.bad"), Ok(()), "a rejected spec arms nothing");
    }
}

#[cfg(all(test, not(feature = "fail")))]
mod tests {
    use super::*;

    #[test]
    fn default_build_compiles_failpoints_out() {
        assert!(!enabled());
        assert_eq!(point("store.open.read"), Ok(()));
        assert_eq!(configure("store.open.read", "err"), Err(DISABLED.into()));
        assert_eq!(configure_list("a=err"), Err(DISABLED.into()));
        assert!(snapshot().is_empty());
        assert!(!clear("store.open.read"));
    }
}
