//! The competing compressors of §IV:
//!
//! * [`k2`] — the plain k²-tree representation (Brisaboa et al. \[21\]),
//!   extended to labeled/RDF graphs with one tree per label as in
//!   Álvarez-García et al. \[8\]. This is the baseline of Table V and one
//!   of the three in Fig. 12 / Table VI.
//! * [`lm`] — the List Merging compressor of Grabowski & Bieniecki \[20\]
//!   (chunk size 64, as in their paper), with our DEFLATE-like `grepair-lz`
//!   standing in for gzip.
//! * [`hn`] — dense-substructure virtual-node mining in the style of
//!   Buehrer & Chellapilla \[23\] / Hernández & Navarro \[22\]
//!   (T = 10, P = 2, ES = 10), followed by a k²-tree of the rewired graph.
//! * [`repair_strings`] — classical string RePair \[15\] applied to the
//!   adjacency-list sequence (Claude & Navarro \[19\]); also used to check
//!   the paper's closing claim that gRePair on string-shaped graphs matches
//!   plain RePair.
//!
//! Every baseline reports its exact output size in bits and (except the
//! size-only estimators) decodes back for round-trip testing. Decoders are
//! fully fallible — hostile bytes surface as a [`BaselineError`], never a
//! panic — because the serving layer (`grepair-store`) now loads baseline
//! containers as live query backends, not just as size counters.

#![forbid(unsafe_code)]

pub mod hn;
pub mod k2;
pub mod lm;
pub mod repair_strings;

use grepair_bits::BitError;
use grepair_lz::LzError;

/// Any failure decoding a baseline's byte stream.
///
/// The structured counterpart of the `Result<_, String>` the early decoders
/// returned: the serving layer converts this into its workspace-wide error
/// type without stringifying, so a corrupted [`lm`] container reports the
/// same way a corrupted grammar container does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaselineError {
    /// The general-purpose compressor rejected the stream ([`lm`]).
    Lz(LzError),
    /// A bit-level decode failed (k²-tree payloads).
    Bits(BitError),
    /// The stream decoded but violates the format's own invariants
    /// (out-of-range neighbor, truncated bitmask, inconsistent geometry).
    Format(String),
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::Lz(e) => write!(f, "{e}"),
            BaselineError::Bits(e) => write!(f, "{e}"),
            BaselineError::Format(what) => write!(f, "{what}"),
        }
    }
}

impl std::error::Error for BaselineError {}

impl From<LzError> for BaselineError {
    fn from(e: LzError) -> Self {
        BaselineError::Lz(e)
    }
}

impl From<BitError> for BaselineError {
    fn from(e: BitError) -> Self {
        BaselineError::Bits(e)
    }
}

impl BaselineError {
    /// Shorthand for a format-invariant violation.
    pub fn format(what: impl Into<String>) -> Self {
        BaselineError::Format(what.into())
    }
}
