//! The competing compressors of §IV:
//!
//! * [`k2`] — the plain k²-tree representation (Brisaboa et al. \[21\]),
//!   extended to labeled/RDF graphs with one tree per label as in
//!   Álvarez-García et al. \[8\]. This is the baseline of Table V and one
//!   of the three in Fig. 12 / Table VI.
//! * [`lm`] — the List Merging compressor of Grabowski & Bieniecki \[20\]
//!   (chunk size 64, as in their paper), with our DEFLATE-like `grepair-lz`
//!   standing in for gzip.
//! * [`hn`] — dense-substructure virtual-node mining in the style of
//!   Buehrer & Chellapilla \[23\] / Hernández & Navarro \[22\]
//!   (T = 10, P = 2, ES = 10), followed by a k²-tree of the rewired graph.
//! * [`repair_strings`] — classical string RePair \[15\] applied to the
//!   adjacency-list sequence (Claude & Navarro \[19\]); also used to check
//!   the paper's closing claim that gRePair on string-shaped graphs matches
//!   plain RePair.
//!
//! Every baseline reports its exact output size in bits and (except the
//! size-only estimators) decodes back for round-trip testing.

pub mod hn;
pub mod k2;
pub mod lm;
pub mod repair_strings;
