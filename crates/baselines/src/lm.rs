//! LM — the list-merging web graph compressor of Grabowski & Bieniecki
//! \[20\] ("Tight and simple web graph compression").
//!
//! Nodes are processed in chunks of `h` consecutive IDs (the paper and our
//! experiments use h = 64). The out-lists of a chunk are merged into one
//! ascending list of distinct neighbors; each node then stores a bitmask
//! over that merged list selecting its own neighbors. The byte serialization
//! (varint gap coding for merged lists + raw bitmasks) is finally run
//! through a general-purpose compressor — gzip in the paper, our
//! DEFLATE-like [`grepair_lz`] here.
//!
//! Unlabeled graphs only, exactly like the original (the paper's Table V
//! omits LM for RDF for this reason).

use grepair_hypergraph::{Hypergraph, NodeId};

/// Chunk size; 64 in \[20\] and in the paper's experiments.
pub const DEFAULT_CHUNK: usize = 64;

/// Encoded output.
#[derive(Debug, Clone)]
pub struct LmEncoded {
    /// The compressed byte stream.
    pub bytes: Vec<u8>,
    /// Exact payload size in bits (compressed).
    pub bit_len: u64,
}

impl LmEncoded {
    /// Bits per edge.
    pub fn bits_per_edge(&self, edges: usize) -> f64 {
        grepair_util::fmt::bits_per_edge(self.bit_len, edges as u64)
    }
}

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(data: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0;
    loop {
        let byte = *data.get(*pos)?;
        *pos += 1;
        v |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// Serialize the chunked representation (uncompressed).
fn serialize(g: &Hypergraph, chunk: usize) -> Vec<u8> {
    let n = g.node_bound();
    let mut out = Vec::new();
    push_varint(&mut out, n as u64);
    push_varint(&mut out, chunk as u64);
    let mut block_start = 0usize;
    while block_start < n {
        let block_end = (block_start + chunk).min(n);
        // Merged ascending distinct neighbor list of the block.
        let mut merged: Vec<NodeId> = Vec::new();
        let mut lists: Vec<Vec<NodeId>> = Vec::with_capacity(block_end - block_start);
        for v in block_start..block_end {
            let mut outs: Vec<NodeId> = if g.node_is_alive(v as NodeId) {
                g.out_neighbors(v as NodeId).collect()
            } else {
                Vec::new()
            };
            outs.sort_unstable();
            outs.dedup();
            merged.extend_from_slice(&outs);
            lists.push(outs);
        }
        merged.sort_unstable();
        merged.dedup();
        // Gap-coded merged list.
        push_varint(&mut out, merged.len() as u64);
        let mut prev = 0u64;
        for (i, &x) in merged.iter().enumerate() {
            let gap = if i == 0 { x as u64 } else { x as u64 - prev };
            push_varint(&mut out, gap);
            prev = x as u64;
        }
        // Per-node bitmask over the merged list.
        let mask_bytes = merged.len().div_ceil(8);
        for outs in &lists {
            let mut mask = vec![0u8; mask_bytes];
            for x in outs {
                // audited: merged is the union of the block's out-lists, so
                // every x is present and i < merged.len() ≤ mask_bytes * 8
                let i = merged.binary_search(x).unwrap();
                // audited: i < merged.len() <= mask_bytes * 8, as established above
                mask[i / 8] |= 1 << (i % 8);
            }
            out.extend_from_slice(&mask);
        }
        block_start = block_end;
    }
    out
}

/// Encode with the default chunk size.
pub fn encode(g: &Hypergraph) -> LmEncoded {
    encode_with_chunk(g, DEFAULT_CHUNK)
}

/// Encode with an explicit chunk size.
pub fn encode_with_chunk(g: &Hypergraph, chunk: usize) -> LmEncoded {
    let raw = serialize(g, chunk);
    let bytes = grepair_lz::compress(&raw);
    let bit_len = grepair_lz::compressed_bits(&raw);
    LmEncoded { bytes, bit_len }
}

/// Decode back to an adjacency structure: `out[v]` = sorted out-neighbors.
pub fn decode(encoded: &LmEncoded) -> Result<Vec<Vec<NodeId>>, crate::BaselineError> {
    let bad = crate::BaselineError::format;
    let raw = grepair_lz::decompress(&encoded.bytes)?;
    let mut pos = 0usize;
    let n = read_varint(&raw, &mut pos).ok_or_else(|| bad("missing node count"))? as usize;
    let chunk = read_varint(&raw, &mut pos).ok_or_else(|| bad("missing chunk size"))? as usize;
    if chunk == 0 {
        return Err(bad("zero chunk size"));
    }
    // The decompressed stream bounds the node count: every chunk of nodes
    // costs at least its one-byte merged-length varint, so a header
    // claiming more chunks than the stream has bytes is corrupt — reject
    // it before allocating `n` adjacency lists. A hard ceiling guards the
    // allocation itself against absurd (but self-consistent) claims.
    const MAX_NODES: usize = 1 << 24;
    if n > MAX_NODES {
        return Err(crate::BaselineError::Format(format!(
            "node count {n} exceeds the decoder cap ({MAX_NODES})"
        )));
    }
    if n.div_ceil(chunk) > raw.len() {
        return Err(crate::BaselineError::Format(format!(
            "node count {n} exceeds what the stream can hold"
        )));
    }
    let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    let mut block_start = 0usize;
    while block_start < n {
        let block_end = (block_start + chunk).min(n);
        let merged_len =
            read_varint(&raw, &mut pos).ok_or_else(|| bad("missing merged length"))? as usize;
        if merged_len > raw.len() {
            return Err(bad("merged list longer than the stream"));
        }
        let mut merged = Vec::with_capacity(merged_len);
        let mut acc = 0u64;
        for i in 0..merged_len {
            let gap = read_varint(&raw, &mut pos).ok_or_else(|| bad("missing gap"))?;
            acc = if i == 0 { gap } else { acc.saturating_add(gap) };
            if acc >= n as u64 {
                return Err(bad("neighbor out of range"));
            }
            merged.push(acc as NodeId);
        }
        let mask_bytes = merged_len.div_ceil(8);
        #[allow(clippy::needless_range_loop)] // v is a node id
        for v in block_start..block_end {
            if pos + mask_bytes > raw.len() {
                return Err(bad("truncated bitmask"));
            }
            // audited: the truncation check just above bounds pos + mask_bytes
            let mask = &raw[pos..pos + mask_bytes];
            pos += mask_bytes;
            for (i, &x) in merged.iter().enumerate() {
                // audited: i < merged_len and mask holds ceil(merged_len/8) bytes
                if mask[i / 8] >> (i % 8) & 1 == 1 {
                    // audited: v < block_end ≤ n == adj.len()
                    adj[v].push(x);
                }
            }
        }
        block_start = block_end;
    }
    Ok(adj)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_round_trip(g: &Hypergraph) {
        let enc = encode(g);
        let adj = decode(&enc).unwrap();
        for v in 0..g.node_bound() as NodeId {
            let mut want: Vec<NodeId> = if g.node_is_alive(v) {
                g.out_neighbors(v).collect()
            } else {
                Vec::new()
            };
            want.sort_unstable();
            want.dedup();
            assert_eq!(adj[v as usize], want, "node {v}");
        }
    }

    #[test]
    fn ring_round_trip() {
        let (g, _) =
            Hypergraph::from_simple_edges(300, (0..300u32).map(|i| (i, 0, (i + 1) % 300)));
        check_round_trip(&g);
    }

    #[test]
    fn copied_lists_compress_well() {
        // Web-graph-like: consecutive nodes share most of their out-lists —
        // the case LM is designed for.
        let mut triples = Vec::new();
        for v in 0..512u32 {
            let base = (v / 16) * 16;
            for k in 0..8u32 {
                let t = (base + k * 2 + 1) % 512;
                if t != v {
                    triples.push((v, 0u32, t));
                }
            }
        }
        let (g, _) = Hypergraph::from_simple_edges(512, triples);
        check_round_trip(&g);
        let enc = encode(&g);
        let bpe = enc.bits_per_edge(g.num_edges());
        assert!(bpe < 8.0, "copied lists should be cheap, got {bpe}");
    }

    #[test]
    fn empty_and_sparse() {
        check_round_trip(&Hypergraph::with_nodes(10));
        let (g, _) = Hypergraph::from_simple_edges(100, vec![(0u32, 0u32, 99u32)]);
        check_round_trip(&g);
    }

    #[test]
    fn chunk_size_variants() {
        let (g, _) =
            Hypergraph::from_simple_edges(200, (0..200u32).map(|i| (i, 0, (i * 7 + 1) % 200)));
        for chunk in [1usize, 8, 64, 256] {
            let enc = encode_with_chunk(&g, chunk);
            let adj = decode(&enc).unwrap();
            let total: usize = adj.iter().map(Vec::len).sum();
            assert_eq!(total, g.num_edges(), "chunk {chunk}");
        }
    }
}
