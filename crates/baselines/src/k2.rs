//! The k²-tree baseline: one adjacency-matrix tree per edge label.
//!
//! For unlabeled graphs this is exactly \[21\]; for RDF graphs it is the
//! vertical-partitioning scheme of \[8\] ("one adjacency matrix is created
//! for every edge label and then encoded as a separate k²-tree"), which the
//! paper compares against in Table V.

use grepair_bits::codes::{read_delta, write_delta};
use grepair_bits::{BitReader, BitWriter};
use grepair_hypergraph::{EdgeLabel, Hypergraph};
use grepair_k2tree::K2Tree;

/// Encoded baseline output.
#[derive(Debug, Clone)]
pub struct K2Encoded {
    /// Serialized stream.
    pub bytes: Vec<u8>,
    /// Exact bit length.
    pub bit_len: u64,
}

impl K2Encoded {
    /// Bits per edge.
    pub fn bits_per_edge(&self, edges: usize) -> f64 {
        grepair_util::fmt::bits_per_edge(self.bit_len, edges as u64)
    }
}

/// Encode a simple directed labeled graph (terminal rank-2 edges only).
///
/// # Panics
/// If the graph contains hyperedges or nonterminal labels.
pub fn encode(g: &Hypergraph) -> K2Encoded {
    let mut per_label: Vec<(u32, Vec<(u32, u32)>)> = Vec::new();
    for e in g.edges() {
        let EdgeLabel::Terminal(l) = e.label else {
            // audited: documented encoder precondition; only dataset graphs reach this
            panic!("k2 baseline expects terminal-only graphs")
        };
        assert_eq!(e.att.len(), 2, "k2 baseline expects rank-2 edges");
        match per_label.binary_search_by_key(&l, |(x, _)| *x) {
            // audited: i is the binary-search hit, and rank 2 was asserted just above
            Ok(i) => per_label[i].1.push((e.att[0], e.att[1])),
            // audited: rank 2 was asserted just above; insertion index is from binary_search
            Err(i) => per_label.insert(i, (l, vec![(e.att[0], e.att[1])])),
        }
    }
    let n = g.node_bound() as u32;
    let mut w = BitWriter::new();
    write_delta(&mut w, n as u64 + 1);
    write_delta(&mut w, per_label.len() as u64 + 1);
    for (label, points) in per_label {
        write_delta(&mut w, label as u64 + 1);
        let tree = K2Tree::build(2, n, n, points);
        tree.encode(&mut w);
    }
    let (bytes, bit_len) = w.finish();
    K2Encoded { bytes, bit_len }
}

/// Largest node count the decoder will materialize structures for —
/// protects the serving path from self-consistent but absurd headers.
pub const MAX_DECODE_NODES: u64 = 1 << 24;

/// Decode the per-label trees without materializing the graph — the shape
/// the serving layer's k² query engine keeps resident.
///
/// Returns the node count and the `(label, tree)` pairs in stream order.
/// Every structural claim is validated: tree dimensions must match the
/// header's node count, and the node count is capped by
/// [`MAX_DECODE_NODES`].
pub fn decode_trees(
    bytes: &[u8],
    bit_len: u64,
) -> Result<(u32, Vec<(u32, K2Tree)>), crate::BaselineError> {
    let bad = crate::BaselineError::format;
    let mut r = BitReader::new(bytes, bit_len);
    let n = read_delta(&mut r)? - 1;
    if n > MAX_DECODE_NODES {
        return Err(bad(format!("node count {n} exceeds the decoder cap ({MAX_DECODE_NODES})")));
    }
    let n = n as u32;
    let labels = read_delta(&mut r)? - 1;
    let mut trees: Vec<(u32, K2Tree)> = Vec::new();
    for _ in 0..labels {
        let label = read_delta(&mut r)? - 1;
        if label > u32::MAX as u64 {
            return Err(bad(format!("edge label {label} out of range")));
        }
        // The encoder emits labels strictly ascending; accepting anything
        // else would let one label own two trees, and per-label lookups
        // downstream would silently see only the first.
        if let Some(&(prev, _)) = trees.last() {
            if label as u32 <= prev {
                return Err(bad(format!(
                    "edge labels not strictly ascending ({prev} then {label})"
                )));
            }
        }
        let tree = K2Tree::decode(&mut r)?;
        if tree.rows() != n || tree.cols() != n {
            return Err(bad(format!(
                "tree for label {label} is {}x{}, expected {n}x{n}",
                tree.rows(),
                tree.cols()
            )));
        }
        trees.push((label as u32, tree));
    }
    Ok((n, trees))
}

/// Decode back to a graph (node count = matrix dimension; labels restored).
pub fn decode(bytes: &[u8], bit_len: u64) -> Result<Hypergraph, crate::BaselineError> {
    let (n, trees) = decode_trees(bytes, bit_len)?;
    let mut g = Hypergraph::with_nodes(n as usize);
    for (label, tree) in trees {
        for (row, col) in tree.iter_ones() {
            g.add_edge(EdgeLabel::Terminal(label), &[row, col]);
        }
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_with_labels(n: u32, labels: u32) -> Hypergraph {
        let (g, _) = Hypergraph::from_simple_edges(
            n as usize,
            (0..n).map(|i| (i, i % labels, (i + 1) % n)),
        );
        g
    }

    #[test]
    fn round_trip_multi_label() {
        let g = ring_with_labels(50, 3);
        let enc = encode(&g);
        let back = decode(&enc.bytes, enc.bit_len).unwrap();
        assert_eq!(back.edge_multiset(), g.edge_multiset());
    }

    #[test]
    fn empty_graph() {
        let g = Hypergraph::with_nodes(5);
        let enc = encode(&g);
        let back = decode(&enc.bytes, enc.bit_len).unwrap();
        assert_eq!(back.num_edges(), 0);
    }

    #[test]
    fn duplicate_label_trees_are_rejected() {
        // The encoder emits strictly ascending labels; a crafted stream
        // repeating a label must not load (per-label lookups would only
        // ever see the first tree).
        use grepair_bits::codes::write_delta;
        use grepair_bits::BitWriter;
        let mut w = BitWriter::new();
        write_delta(&mut w, 3 + 1); // n = 3
        write_delta(&mut w, 2 + 1); // two trees...
        for _ in 0..2 {
            write_delta(&mut w, 1); // ...both labeled 0 (label + 1)
            K2Tree::build(2, 3, 3, vec![(0, 1)]).encode(&mut w);
        }
        let (bytes, bit_len) = w.finish();
        let err = decode_trees(&bytes, bit_len).unwrap_err();
        assert!(err.to_string().contains("ascending"), "{err}");
    }

    #[test]
    fn bpe_is_finite_and_reasonable() {
        let g = ring_with_labels(1000, 1);
        let enc = encode(&g);
        let bpe = enc.bits_per_edge(g.num_edges());
        assert!(bpe > 0.0 && bpe < 64.0, "bpe = {bpe}");
    }
}
