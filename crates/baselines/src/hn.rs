//! HN — dense-substructure (virtual node) compression in the style of
//! Buehrer & Chellapilla \[23\], as combined with k²-trees by Hernández &
//! Navarro \[22\].
//!
//! Repeatedly find groups of nodes sharing a large set of out-neighbors
//! (approximate bicliques), replace the |S|·|C| direct edges by |S| + |C|
//! edges through a fresh *virtual node*, then store the rewired graph as a
//! k²-tree. The mining is the usual shingle-clustering greedy
//! approximation: nodes are clustered by a min-hash of their out-lists and
//! common neighbor sets are extracted per cluster.
//!
//! Parameters follow the paper's experiments: `T = 10` (cluster size
//! threshold for mining), `P = 2` (minimum common-set size), `ES = 10`
//! (mining passes).

use grepair_hypergraph::{Hypergraph, NodeId};
use grepair_util::FxHashMap;

/// Mining parameters.
#[derive(Debug, Clone, Copy)]
pub struct HnParams {
    /// Cluster size threshold: clusters at least this large are mined first;
    /// smaller groups are still exploited when profitable.
    pub t: usize,
    /// Minimum size of a shared neighbor set worth extracting.
    pub p: usize,
    /// Number of mining passes.
    pub es: usize,
}

impl Default for HnParams {
    fn default() -> Self {
        // T = 10, P = 2, ES = 10 — "the parameters their experiments show to
        // provide the best compression" (§IV).
        Self { t: 10, p: 2, es: 10 }
    }
}

/// Result of the rewiring phase.
#[derive(Debug)]
pub struct Rewired {
    /// Out-adjacency of the rewired graph; indices ≥ `original_nodes` are
    /// virtual.
    pub adj: Vec<Vec<NodeId>>,
    /// Number of original nodes.
    pub original_nodes: usize,
}

fn minhash(list: &[NodeId], seed: u64) -> u64 {
    list.iter()
        .map(|&x| {
            let mut h = x as u64 ^ seed;
            h ^= h >> 33;
            h = h.wrapping_mul(0xFF51AFD7ED558CCD);
            h ^= h >> 33;
            h
        })
        .min()
        .unwrap_or(u64::MAX)
}

/// Mine virtual nodes over the out-adjacency lists.
pub fn rewire(g: &Hypergraph, params: &HnParams) -> Rewired {
    let n = g.node_bound();
    let mut adj: Vec<Vec<NodeId>> = (0..n as NodeId)
        .map(|v| {
            if g.node_is_alive(v) {
                let mut outs: Vec<NodeId> = g.out_neighbors(v).collect();
                outs.sort_unstable();
                outs.dedup();
                outs
            } else {
                Vec::new()
            }
        })
        .collect();

    for pass in 0..params.es {
        // Cluster rows by min-hash shingle of their out-lists.
        let mut clusters: FxHashMap<u64, Vec<NodeId>> = FxHashMap::default();
        for (v, outs) in adj.iter().enumerate() {
            if outs.len() >= params.p {
                clusters
                    .entry(minhash(outs, 0x9E3779B9 + pass as u64))
                    .or_default()
                    .push(v as NodeId);
            }
        }
        let mut clusters: Vec<Vec<NodeId>> = clusters.into_values().collect();
        // Deterministic processing order: big clusters first.
        clusters.sort_by_key(|c| (std::cmp::Reverse(c.len()), c.first().copied()));

        for cluster in clusters {
            if cluster.len() < 2 {
                continue;
            }
            // Greedy: intersect out-lists, largest-first prefix of the
            // cluster, keeping the extraction profitable.
            let mut members: Vec<NodeId> = Vec::new();
            let mut common: Vec<NodeId> = Vec::new();
            for &v in &cluster {
                // audited: cluster members come from enumerating `adj`, so v < adj.len()
                let outs = &adj[v as usize];
                if members.is_empty() {
                    members.push(v);
                    common = outs.clone();
                    continue;
                }
                let next: Vec<NodeId> = common
                    .iter()
                    .copied()
                    .filter(|x| outs.binary_search(x).is_ok())
                    .collect();
                if next.len() >= params.p {
                    members.push(v);
                    common = next;
                }
                if members.len() >= params.t && common.len() >= params.p {
                    // Large enough; stop growing to keep common big.
                    break;
                }
            }
            // Profitability: replace members·common edges by members+common.
            let saved = members.len() * common.len();
            let cost = members.len() + common.len();
            if members.len() < 2 || common.len() < params.p || saved <= cost {
                continue;
            }
            let virtual_id = adj.len() as NodeId;
            adj.push(common.clone());
            for &v in &members {
                // audited: members ⊆ cluster, and cluster members are adj indices
                let list = &mut adj[v as usize];
                list.retain(|x| common.binary_search(x).is_err());
                list.push(virtual_id);
                list.sort_unstable();
            }
        }
    }
    Rewired { adj, original_nodes: n }
}

/// Expand virtual nodes back into direct edges (the decompression side).
///
/// Infallible wrapper over [`try_expand`] for trusted [`rewire`] output
/// (no memo budget).
pub fn expand(rewired: &Rewired) -> Vec<Vec<NodeId>> {
    // audited: the only error path is exceeding the budget, and this one is usize::MAX
    try_expand(rewired, usize::MAX).expect("unbounded expansion cannot exceed its budget")
}

/// Memo-size budget serving paths pass to [`try_expand`]: hostile chained
/// virtual references can make the intermediate resolution state
/// quadratically larger than both the container and the final output, so
/// decoding untrusted bytes must bound it.
pub const EXPAND_BUDGET: usize = 1 << 26;

/// Expand virtual nodes back into direct edges, erroring if the memoized
/// resolution state exceeds `max_entries` total node entries.
///
/// Virtual nodes reference each other in both directions — backward to the
/// common sets they were built from, forward when a later mining pass
/// recruits an existing virtual node as a member — so resolution is a
/// memoized depth-first pass. It runs on an explicit stack (no recursion to
/// overflow on deep virtual chains), and a reference cycle — impossible in
/// [`rewire`] output but representable in hostile [`decode`] input — is
/// broken deterministically by treating the back-reference as empty.
pub fn try_expand(
    rewired: &Rewired,
    max_entries: usize,
) -> Result<Vec<Vec<NodeId>>, crate::BaselineError> {
    let n = rewired.original_nodes;
    let total = rewired.adj.len();
    // Resolution state per virtual node: None = untouched, Some(None) = in
    // progress (on the stack), Some(Some(list)) = resolved.
    let mut resolved: Vec<Option<Option<Vec<NodeId>>>> = vec![None; total - n];
    // Total node entries held across memo + output, charged against
    // `max_entries` *before* each list is materialized.
    let mut entries = 0usize;
    let expand_one = |id: usize,
                      resolved: &[Option<Option<Vec<NodeId>>>],
                      entries: &mut usize|
     -> Result<Vec<NodeId>, crate::BaselineError> {
        // Pre-charge the worst-case (pre-dedup) length so a hostile fan-in
        // cannot materialize a huge transient list either.
        let mut len = 0usize;
        // audited: ids come from 0..total ranges or adjacency entries, and decode
        // checks the k²-tree is total×total — so id < total == adj.len() and every
        // virtual index xi - n lands inside `resolved` (len total - n)
        let list = &rewired.adj[id];
        for &x in list {
            let xi = x as usize;
            len = len.saturating_add(if xi < n {
                1
            } else {
                // audited: xi < total (k²-tree col bound), so xi - n < resolved.len()
                match &resolved[xi - n] {
                    Some(Some(sub)) => sub.len(),
                    _ => 0,
                }
            });
        }
        *entries = entries.saturating_add(len);
        if *entries > max_entries {
            return Err(crate::BaselineError::Format(format!(
                "virtual-node expansion exceeds the {max_entries}-entry budget"
            )));
        }
        let mut out = Vec::with_capacity(len);
        for &x in list {
            let xi = x as usize;
            if xi < n {
                out.push(x);
            // audited: same bound as the charging loop above — xi < total
            } else if let Some(Some(sub)) = &resolved[xi - n] {
                out.extend_from_slice(sub);
            }
        }
        out.sort_unstable();
        out.dedup();
        *entries -= len - out.len(); // refund what dedup dropped
        Ok(out)
    };
    // Stack entries are either roots from n..total or adjacency entries in
    // n..total (decode's dimension check bounds every entry by total), so
    // every `resolved[… - n]` below stays inside its total - n slots.
    let mut stack: Vec<usize> = Vec::new();
    for root in n..total {
        // audited: root ∈ n..total, so root - n < resolved.len()
        if resolved[root - n].is_some() {
            continue;
        }
        stack.push(root);
        while let Some(&id) = stack.last() {
            // audited: stack entries are bounded by total (see above)
            if matches!(resolved[id - n], Some(Some(_))) {
                stack.pop();
                continue;
            }
            // audited: stack entries are bounded by total (see above)
            resolved[id - n] = Some(None); // mark in progress
            let mut ready = true;
            // audited: id < total == adj.len() (see above)
            for &x in &rewired.adj[id] {
                let xi = x as usize;
                // Untouched virtual dependency: resolve it first. In-progress
                // means a cycle; leave it marked and it contributes nothing.
                // audited: xi < total (k²-tree col bound), so xi - n is in range
                if xi >= n && resolved[xi - n].is_none() {
                    stack.push(xi);
                    ready = false;
                }
            }
            if ready {
                let out = expand_one(id, &resolved, &mut entries)?;
                // audited: stack entries are bounded by total (see above)
                resolved[id - n] = Some(Some(out));
                stack.pop();
            }
        }
    }
    (0..n)
        .map(|v| expand_one(v, &resolved, &mut entries))
        .collect()
}

/// Encoded output: the rewired graph as a k²-tree plus the virtual-node
/// count.
#[derive(Debug, Clone)]
pub struct HnEncoded {
    /// Serialized stream.
    pub bytes: Vec<u8>,
    /// Exact bit length.
    pub bit_len: u64,
    /// Virtual nodes the miner introduced.
    pub virtual_nodes: usize,
}

impl HnEncoded {
    /// Bits per (original) edge.
    pub fn bits_per_edge(&self, edges: usize) -> f64 {
        grepair_util::fmt::bits_per_edge(self.bit_len, edges as u64)
    }
}

/// Full pipeline: mine, rewire, k²-tree encode.
pub fn encode(g: &Hypergraph, params: &HnParams) -> HnEncoded {
    use grepair_bits::codes::write_delta;
    use grepair_bits::BitWriter;
    use grepair_k2tree::K2Tree;

    let rewired = rewire(g, params);
    let total = rewired.adj.len() as u32;
    let mut points = Vec::new();
    for (v, outs) in rewired.adj.iter().enumerate() {
        for &x in outs {
            points.push((v as u32, x));
        }
    }
    let mut w = BitWriter::new();
    write_delta(&mut w, rewired.original_nodes as u64 + 1);
    write_delta(&mut w, (total as usize - rewired.original_nodes) as u64 + 1);
    let tree = K2Tree::build(2, total, total, points);
    tree.encode(&mut w);
    let (bytes, bit_len) = w.finish();
    HnEncoded { bytes, bit_len, virtual_nodes: total as usize - rewired.original_nodes }
}

/// Decode an [`encode`] stream back to the rewired adjacency — the shape
/// the serving layer's HN query engine expands and keeps resident.
///
/// Validates everything the format implies: the tree's dimensions must
/// match the claimed node counts and the total is capped (matching
/// [`crate::k2::MAX_DECODE_NODES`]). Reference cycles among virtual nodes
/// — representable in hostile bytes, never emitted by [`rewire`] — are
/// tolerated downstream: [`expand`] breaks them deterministically.
pub fn decode(bytes: &[u8], bit_len: u64) -> Result<Rewired, crate::BaselineError> {
    use grepair_bits::codes::read_delta;
    use grepair_bits::BitReader;
    use grepair_k2tree::K2Tree;

    let bad = crate::BaselineError::format;
    let mut r = BitReader::new(bytes, bit_len);
    let original = read_delta(&mut r)? - 1;
    let virtual_nodes = read_delta(&mut r)? - 1;
    let total = original.saturating_add(virtual_nodes);
    if total > crate::k2::MAX_DECODE_NODES {
        return Err(bad(format!(
            "node count {total} exceeds the decoder cap ({})",
            crate::k2::MAX_DECODE_NODES
        )));
    }
    let tree = K2Tree::decode(&mut r)?;
    if tree.rows() as u64 != total || tree.cols() as u64 != total {
        return Err(bad(format!(
            "rewired matrix is {}x{}, expected {total}x{total}",
            tree.rows(),
            tree.cols()
        )));
    }
    let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); total as usize];
    for (row, col) in tree.iter_ones() {
        // audited: iter_ones yields row < rows, checked == total just above
        adj[row as usize].push(col);
    }
    Ok(Rewired { adj, original_nodes: original as usize })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn original_adj(g: &Hypergraph) -> Vec<Vec<NodeId>> {
        (0..g.node_bound() as NodeId)
            .map(|v| {
                if g.node_is_alive(v) {
                    let mut outs: Vec<NodeId> = g.out_neighbors(v).collect();
                    outs.sort_unstable();
                    outs.dedup();
                    outs
                } else {
                    Vec::new()
                }
            })
            .collect()
    }

    /// A bipartite core: 20 source nodes all pointing at the same 10
    /// targets — prime material for a virtual node.
    fn biclique() -> Hypergraph {
        let mut triples = Vec::new();
        for s in 0..20u32 {
            for t in 20..30u32 {
                triples.push((s, 0u32, t));
            }
        }
        Hypergraph::from_simple_edges(30, triples).0
    }

    #[test]
    fn biclique_gets_a_virtual_node() {
        let g = biclique();
        let rewired = rewire(&g, &HnParams::default());
        assert!(rewired.adj.len() > 30, "no virtual node created");
        // Rewired edge count must be far below 200.
        let total: usize = rewired.adj.iter().map(Vec::len).sum();
        assert!(total <= 20 + 10 + 5, "rewired edges: {total}");
        // Expansion restores the original adjacency exactly.
        assert_eq!(expand(&rewired), original_adj(&g));
    }

    #[test]
    fn random_graph_round_trips() {
        let mut triples = Vec::new();
        let mut x = 99u64;
        for _ in 0..400 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let s = ((x >> 33) % 60) as u32;
            let t = ((x >> 13) % 60) as u32;
            if s != t {
                triples.push((s, 0u32, t));
            }
        }
        let (g, _) = Hypergraph::from_simple_edges(60, triples);
        let rewired = rewire(&g, &HnParams::default());
        assert_eq!(expand(&rewired), original_adj(&g));
    }

    #[test]
    fn encode_beats_plain_k2_on_dense_substructure() {
        let g = biclique();
        let hn = encode(&g, &HnParams::default());
        let plain = crate::k2::encode(&g);
        assert!(
            hn.bit_len < plain.bit_len,
            "HN {} vs k2 {}",
            hn.bit_len,
            plain.bit_len
        );
        assert!(hn.virtual_nodes >= 1);
    }

    #[test]
    fn empty_graph() {
        let g = Hypergraph::with_nodes(4);
        let enc = encode(&g, &HnParams::default());
        assert_eq!(enc.virtual_nodes, 0);
        assert!(enc.bit_len > 0);
    }

    #[test]
    fn encode_decode_expand_round_trips() {
        for g in [biclique(), Hypergraph::with_nodes(4)] {
            let enc = encode(&g, &HnParams::default());
            let rewired = decode(&enc.bytes, enc.bit_len).unwrap();
            assert_eq!(rewired.original_nodes, g.node_bound());
            assert_eq!(expand(&rewired), original_adj(&g));
        }
    }

    #[test]
    fn decode_rejects_mismatched_geometry() {
        let g = biclique();
        let enc = encode(&g, &HnParams::default());
        // Truncations must error, never panic.
        for bits in [0u64, 1, 5, enc.bit_len / 2] {
            let bytes = &enc.bytes[..(bits as usize).div_ceil(8).min(enc.bytes.len())];
            assert!(decode(bytes, bits).is_err(), "truncated to {bits} bits");
        }
    }

    #[test]
    fn expand_breaks_hostile_cycles() {
        // Two virtual nodes referencing each other — never produced by
        // rewire, but representable in decoded bytes. Expansion must
        // terminate and stay deterministic.
        let rewired = Rewired {
            adj: vec![vec![2], vec![3], vec![0, 3], vec![1, 2]],
            original_nodes: 2,
        };
        let out = expand(&rewired);
        assert_eq!(out.len(), 2);
        // Virtual 2 -> {0} ∪ expand(3); virtual 3 -> {1} ∪ expand(2); the
        // cycle contributes nothing at the point it is re-entered.
        assert!(out[0].contains(&0) || out[0].contains(&1));
    }

    #[test]
    fn try_expand_budget_rejects_hostile_blowup() {
        // A forward chain where each virtual node adds one fresh original:
        // resolved sizes grow linearly, so total memo entries grow
        // quadratically in the number of virtual nodes — far beyond the
        // container or output size. The budget must catch it.
        let n = 64usize;
        let virtuals = 64usize;
        let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        adj[0] = vec![n as NodeId]; // one original referencing the chain
        for i in 0..virtuals {
            let mut row = vec![(i % n) as NodeId];
            if i + 1 < virtuals {
                row.push((n + i + 1) as NodeId);
            }
            adj.push(row);
        }
        let rewired = Rewired { adj, original_nodes: n };
        let err = try_expand(&rewired, 100).unwrap_err();
        assert!(err.to_string().contains("budget"), "{err}");
        // A generous budget succeeds and matches the unbounded path.
        assert_eq!(try_expand(&rewired, 1 << 20).unwrap(), expand(&rewired));
    }

    #[test]
    fn deep_virtual_chains_do_not_overflow_the_stack() {
        // A 60k-deep chain of virtual nodes: the old recursive expansion
        // would blow the stack here.
        let n = 1usize;
        let depth = 60_000usize;
        let mut adj = vec![vec![1 as NodeId]]; // original 0 -> first virtual
        for i in 0..depth {
            let next = if i + 1 == depth { 0 } else { (i + 2) as NodeId };
            adj.push(vec![next]);
        }
        let rewired = Rewired { adj, original_nodes: n };
        let out = expand(&rewired);
        assert_eq!(out, vec![vec![0]]);
    }
}
