//! HN — dense-substructure (virtual node) compression in the style of
//! Buehrer & Chellapilla \[23\], as combined with k²-trees by Hernández &
//! Navarro \[22\].
//!
//! Repeatedly find groups of nodes sharing a large set of out-neighbors
//! (approximate bicliques), replace the |S|·|C| direct edges by |S| + |C|
//! edges through a fresh *virtual node*, then store the rewired graph as a
//! k²-tree. The mining is the usual shingle-clustering greedy
//! approximation: nodes are clustered by a min-hash of their out-lists and
//! common neighbor sets are extracted per cluster.
//!
//! Parameters follow the paper's experiments: `T = 10` (cluster size
//! threshold for mining), `P = 2` (minimum common-set size), `ES = 10`
//! (mining passes).

use grepair_hypergraph::{Hypergraph, NodeId};
use grepair_util::FxHashMap;

/// Mining parameters.
#[derive(Debug, Clone, Copy)]
pub struct HnParams {
    /// Cluster size threshold: clusters at least this large are mined first;
    /// smaller groups are still exploited when profitable.
    pub t: usize,
    /// Minimum size of a shared neighbor set worth extracting.
    pub p: usize,
    /// Number of mining passes.
    pub es: usize,
}

impl Default for HnParams {
    fn default() -> Self {
        // T = 10, P = 2, ES = 10 — "the parameters their experiments show to
        // provide the best compression" (§IV).
        Self { t: 10, p: 2, es: 10 }
    }
}

/// Result of the rewiring phase.
#[derive(Debug)]
pub struct Rewired {
    /// Out-adjacency of the rewired graph; indices ≥ `original_nodes` are
    /// virtual.
    pub adj: Vec<Vec<NodeId>>,
    /// Number of original nodes.
    pub original_nodes: usize,
}

fn minhash(list: &[NodeId], seed: u64) -> u64 {
    list.iter()
        .map(|&x| {
            let mut h = x as u64 ^ seed;
            h ^= h >> 33;
            h = h.wrapping_mul(0xFF51AFD7ED558CCD);
            h ^= h >> 33;
            h
        })
        .min()
        .unwrap_or(u64::MAX)
}

/// Mine virtual nodes over the out-adjacency lists.
pub fn rewire(g: &Hypergraph, params: &HnParams) -> Rewired {
    let n = g.node_bound();
    let mut adj: Vec<Vec<NodeId>> = (0..n as NodeId)
        .map(|v| {
            if g.node_is_alive(v) {
                let mut outs: Vec<NodeId> = g.out_neighbors(v).collect();
                outs.sort_unstable();
                outs.dedup();
                outs
            } else {
                Vec::new()
            }
        })
        .collect();

    for pass in 0..params.es {
        // Cluster rows by min-hash shingle of their out-lists.
        let mut clusters: FxHashMap<u64, Vec<NodeId>> = FxHashMap::default();
        for (v, outs) in adj.iter().enumerate() {
            if outs.len() >= params.p {
                clusters
                    .entry(minhash(outs, 0x9E3779B9 + pass as u64))
                    .or_default()
                    .push(v as NodeId);
            }
        }
        let mut clusters: Vec<Vec<NodeId>> = clusters.into_values().collect();
        // Deterministic processing order: big clusters first.
        clusters.sort_by_key(|c| (std::cmp::Reverse(c.len()), c.first().copied()));

        for cluster in clusters {
            if cluster.len() < 2 {
                continue;
            }
            // Greedy: intersect out-lists, largest-first prefix of the
            // cluster, keeping the extraction profitable.
            let mut members: Vec<NodeId> = Vec::new();
            let mut common: Vec<NodeId> = Vec::new();
            for &v in &cluster {
                if members.is_empty() {
                    members.push(v);
                    common = adj[v as usize].clone();
                    continue;
                }
                let next: Vec<NodeId> = common
                    .iter()
                    .copied()
                    .filter(|x| adj[v as usize].binary_search(x).is_ok())
                    .collect();
                if next.len() >= params.p {
                    members.push(v);
                    common = next;
                }
                if members.len() >= params.t && common.len() >= params.p {
                    // Large enough; stop growing to keep common big.
                    break;
                }
            }
            // Profitability: replace members·common edges by members+common.
            let saved = members.len() * common.len();
            let cost = members.len() + common.len();
            if members.len() < 2 || common.len() < params.p || saved <= cost {
                continue;
            }
            let virtual_id = adj.len() as NodeId;
            adj.push(common.clone());
            for &v in &members {
                adj[v as usize].retain(|x| common.binary_search(x).is_err());
                adj[v as usize].push(virtual_id);
                adj[v as usize].sort_unstable();
            }
        }
    }
    Rewired { adj, original_nodes: n }
}

/// Expand virtual nodes back into direct edges (the decompression side).
pub fn expand(rewired: &Rewired) -> Vec<Vec<NodeId>> {
    let n = rewired.original_nodes;
    // Resolve virtual targets transitively (virtual nodes may point at
    // later-created virtual nodes).
    let mut resolved: Vec<Option<Vec<NodeId>>> = vec![None; rewired.adj.len()];
    fn resolve(
        id: usize,
        n: usize,
        adj: &[Vec<NodeId>],
        resolved: &mut Vec<Option<Vec<NodeId>>>,
    ) -> Vec<NodeId> {
        if let Some(r) = &resolved[id] {
            return r.clone();
        }
        let mut out = Vec::new();
        for &x in &adj[id] {
            if (x as usize) < n {
                out.push(x);
            } else {
                out.extend(resolve(x as usize, n, adj, resolved));
            }
        }
        out.sort_unstable();
        out.dedup();
        resolved[id] = Some(out.clone());
        out
    }
    (0..n).map(|v| resolve(v, n, &rewired.adj, &mut resolved)).collect()
}

/// Encoded output: the rewired graph as a k²-tree plus the virtual-node
/// count.
#[derive(Debug, Clone)]
pub struct HnEncoded {
    /// Serialized stream.
    pub bytes: Vec<u8>,
    /// Exact bit length.
    pub bit_len: u64,
    /// Virtual nodes the miner introduced.
    pub virtual_nodes: usize,
}

impl HnEncoded {
    /// Bits per (original) edge.
    pub fn bits_per_edge(&self, edges: usize) -> f64 {
        grepair_util::fmt::bits_per_edge(self.bit_len, edges as u64)
    }
}

/// Full pipeline: mine, rewire, k²-tree encode.
pub fn encode(g: &Hypergraph, params: &HnParams) -> HnEncoded {
    use grepair_bits::codes::write_delta;
    use grepair_bits::BitWriter;
    use grepair_k2tree::K2Tree;

    let rewired = rewire(g, params);
    let total = rewired.adj.len() as u32;
    let mut points = Vec::new();
    for (v, outs) in rewired.adj.iter().enumerate() {
        for &x in outs {
            points.push((v as u32, x));
        }
    }
    let mut w = BitWriter::new();
    write_delta(&mut w, rewired.original_nodes as u64 + 1);
    write_delta(&mut w, (total as usize - rewired.original_nodes) as u64 + 1);
    let tree = K2Tree::build(2, total, total, points);
    tree.encode(&mut w);
    let (bytes, bit_len) = w.finish();
    HnEncoded { bytes, bit_len, virtual_nodes: total as usize - rewired.original_nodes }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn original_adj(g: &Hypergraph) -> Vec<Vec<NodeId>> {
        (0..g.node_bound() as NodeId)
            .map(|v| {
                if g.node_is_alive(v) {
                    let mut outs: Vec<NodeId> = g.out_neighbors(v).collect();
                    outs.sort_unstable();
                    outs.dedup();
                    outs
                } else {
                    Vec::new()
                }
            })
            .collect()
    }

    /// A bipartite core: 20 source nodes all pointing at the same 10
    /// targets — prime material for a virtual node.
    fn biclique() -> Hypergraph {
        let mut triples = Vec::new();
        for s in 0..20u32 {
            for t in 20..30u32 {
                triples.push((s, 0u32, t));
            }
        }
        Hypergraph::from_simple_edges(30, triples).0
    }

    #[test]
    fn biclique_gets_a_virtual_node() {
        let g = biclique();
        let rewired = rewire(&g, &HnParams::default());
        assert!(rewired.adj.len() > 30, "no virtual node created");
        // Rewired edge count must be far below 200.
        let total: usize = rewired.adj.iter().map(Vec::len).sum();
        assert!(total <= 20 + 10 + 5, "rewired edges: {total}");
        // Expansion restores the original adjacency exactly.
        assert_eq!(expand(&rewired), original_adj(&g));
    }

    #[test]
    fn random_graph_round_trips() {
        let mut triples = Vec::new();
        let mut x = 99u64;
        for _ in 0..400 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let s = ((x >> 33) % 60) as u32;
            let t = ((x >> 13) % 60) as u32;
            if s != t {
                triples.push((s, 0u32, t));
            }
        }
        let (g, _) = Hypergraph::from_simple_edges(60, triples);
        let rewired = rewire(&g, &HnParams::default());
        assert_eq!(expand(&rewired), original_adj(&g));
    }

    #[test]
    fn encode_beats_plain_k2_on_dense_substructure() {
        let g = biclique();
        let hn = encode(&g, &HnParams::default());
        let plain = crate::k2::encode(&g);
        assert!(
            hn.bit_len < plain.bit_len,
            "HN {} vs k2 {}",
            hn.bit_len,
            plain.bit_len
        );
        assert!(hn.virtual_nodes >= 1);
    }

    #[test]
    fn empty_graph() {
        let g = Hypergraph::with_nodes(4);
        let enc = encode(&g, &HnParams::default());
        assert_eq!(enc.virtual_nodes, 0);
        assert!(enc.bit_len > 0);
    }
}
