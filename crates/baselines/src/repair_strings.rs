//! Classical string RePair (Larsson & Moffat \[15\]) and its application to
//! adjacency lists (Claude & Navarro \[19\]).
//!
//! RePair repeatedly replaces the most frequent pair of adjacent symbols
//! with a fresh symbol until every pair is unique. This implementation uses
//! the standard machinery: a doubly-linked symbol sequence, per-pair
//! occurrence lists with lazy invalidation, and a max-heap of pair counts —
//! O((n + #replacements) log n) overall.
//!
//! Besides serving as the \[19\] baseline (`encode_graph`), string RePair is
//! used by the test suite to check the paper's closing claim that *gRePair
//! on string-shaped graphs obtains similar compression to string RePair*.

use grepair_hypergraph::Hypergraph;
use grepair_util::FxHashMap;
use std::collections::BinaryHeap;

/// A string RePair grammar: `rules[i]` expands symbol `alphabet + i`.
#[derive(Debug, Clone)]
pub struct StringGrammar {
    /// Input alphabet size.
    pub alphabet: u32,
    /// Pair rules, in creation order.
    pub rules: Vec<(u32, u32)>,
    /// The residual (compressed) sequence.
    pub sequence: Vec<u32>,
}

impl StringGrammar {
    /// Expand back to the original sequence.
    pub fn expand(&self) -> Vec<u32> {
        let mut out = Vec::new();
        for &s in &self.sequence {
            self.expand_symbol(s, &mut out);
        }
        out
    }

    fn expand_symbol(&self, s: u32, out: &mut Vec<u32>) {
        if s < self.alphabet {
            out.push(s);
        } else {
            let (a, b) = self.rules[(s - self.alphabet) as usize];
            self.expand_symbol(a, out);
            self.expand_symbol(b, out);
        }
    }

    /// Size estimate in bits: every rule is two symbols, plus the residual
    /// sequence, all at ⌈log₂(alphabet + #rules)⌉ bits per symbol.
    pub fn size_bits(&self) -> u64 {
        let symbols = self.alphabet as u64 + self.rules.len() as u64;
        let width = grepair_bits::codes::ceil_log2(symbols.max(2)) as u64;
        (2 * self.rules.len() as u64 + self.sequence.len() as u64) * width
    }
}

/// Run RePair on `input` over alphabet `0..alphabet`.
pub fn repair(input: &[u32], alphabet: u32) -> StringGrammar {
    let n = input.len();
    let mut sym: Vec<u32> = input.to_vec();
    let mut alive = vec![true; n];
    let mut next: Vec<usize> = (0..n).map(|i| i + 1).collect();
    let mut prev: Vec<usize> = (0..n).map(|i| i.wrapping_sub(1)).collect();

    // Pair bookkeeping: live counts + occurrence position lists (lazily
    // validated) + a lazy max-heap.
    let mut counts: FxHashMap<(u32, u32), usize> = FxHashMap::default();
    let mut positions: FxHashMap<(u32, u32), Vec<usize>> = FxHashMap::default();
    let mut heap: BinaryHeap<(usize, (u32, u32))> = BinaryHeap::new();

    let add_pair = |counts: &mut FxHashMap<(u32, u32), usize>,
                        positions: &mut FxHashMap<(u32, u32), Vec<usize>>,
                        heap: &mut BinaryHeap<(usize, (u32, u32))>,
                        pair: (u32, u32),
                        pos: usize| {
        let c = counts.entry(pair).or_insert(0);
        *c += 1;
        positions.entry(pair).or_default().push(pos);
        if *c >= 2 {
            heap.push((*c, pair));
        }
    };

    for i in 0..n.saturating_sub(1) {
        add_pair(&mut counts, &mut positions, &mut heap, (sym[i], sym[i + 1]), i);
    }

    let mut rules: Vec<(u32, u32)> = Vec::new();

    while let Some((claimed, pair)) = heap.pop() {
        let live = counts.get(&pair).copied().unwrap_or(0);
        if live < 2 || claimed != live {
            continue; // stale heap entry
        }
        let new_sym = alphabet + rules.len() as u32;
        rules.push(pair);
        let occ_list = positions.remove(&pair).unwrap_or_default();
        counts.remove(&pair);
        for pos in occ_list {
            // Validate: both symbols still alive and forming `pair`.
            if !alive.get(pos).copied().unwrap_or(false) || sym[pos] != pair.0 {
                continue;
            }
            let right = next[pos];
            if right >= n || !alive[right] || sym[right] != pair.1 {
                continue;
            }
            // Decrement the overlapping neighbor pairs.
            let left = prev[pos];
            if left != usize::MAX && alive.get(left).copied().unwrap_or(false) {
                let lp = (sym[left], sym[pos]);
                if lp != pair {
                    if let Some(c) = counts.get_mut(&lp) {
                        *c = c.saturating_sub(1);
                    }
                }
            }
            let right2 = next[right];
            if right2 < n && alive[right2] {
                let rp = (sym[right], sym[right2]);
                if rp != pair {
                    if let Some(c) = counts.get_mut(&rp) {
                        *c = c.saturating_sub(1);
                    }
                }
            }
            // Replace: pos becomes new_sym, right dies.
            sym[pos] = new_sym;
            alive[right] = false;
            next[pos] = right2;
            if right2 < n {
                prev[right2] = pos;
            }
            // New neighbor pairs.
            if left != usize::MAX && alive.get(left).copied().unwrap_or(false) {
                add_pair(&mut counts, &mut positions, &mut heap, (sym[left], new_sym), left);
            }
            if right2 < n && alive[right2] {
                add_pair(&mut counts, &mut positions, &mut heap, (new_sym, sym[right2]), pos);
            }
        }
    }

    let sequence: Vec<u32> = (0..n).filter(|&i| alive[i]).map(|i| sym[i]).collect();
    StringGrammar { alphabet, rules, sequence }
}

/// Build the adjacency-list sequence of \[19\]: for every node with
/// out-edges, a marker symbol `n + v` followed by the sorted out-neighbors.
pub fn adjacency_sequence(g: &Hypergraph) -> (Vec<u32>, u32) {
    let n = g.node_bound() as u32;
    let mut seq = Vec::new();
    for v in g.node_ids() {
        let mut outs: Vec<u32> = g.out_neighbors(v).collect();
        if outs.is_empty() {
            continue;
        }
        outs.sort_unstable();
        outs.dedup();
        seq.push(n + v);
        seq.extend(outs);
    }
    (seq, 2 * n)
}

/// The \[19\] baseline: RePair over the adjacency sequence; returns the
/// grammar and its size estimate in bits.
pub fn encode_graph(g: &Hypergraph) -> (StringGrammar, u64) {
    let (seq, alphabet) = adjacency_sequence(g);
    let grammar = repair(&seq, alphabet);
    let bits = grammar.size_bits();
    (grammar, bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_example() {
        // abcabcabc → grammar with ~2 rules and a 3-symbol sequence.
        let input: Vec<u32> = vec![0, 1, 2, 0, 1, 2, 0, 1, 2];
        let g = repair(&input, 3);
        assert_eq!(g.expand(), input);
        assert!(g.rules.len() >= 2, "{:?}", g.rules);
        assert!(g.sequence.len() <= 3, "{:?}", g.sequence);
    }

    #[test]
    fn overlapping_runs() {
        // aaaa...: occurrences overlap; RePair must not double-replace.
        let input = vec![7u32; 31];
        let g = repair(&input, 8);
        assert_eq!(g.expand(), input);
        assert!(g.sequence.len() < 8);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(repair(&[], 4).expand(), Vec::<u32>::new());
        assert_eq!(repair(&[3], 4).expand(), vec![3]);
    }

    #[test]
    fn random_sequences_round_trip() {
        let mut x = 7u64;
        for len in [10usize, 100, 1000] {
            let input: Vec<u32> = (0..len)
                .map(|_| {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    ((x >> 33) % 5) as u32
                })
                .collect();
            let g = repair(&input, 5);
            assert_eq!(g.expand(), input, "len {len}");
        }
    }

    #[test]
    fn no_active_pairs_remain() {
        let mut x = 3u64;
        let input: Vec<u32> = (0..500)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((x >> 33) % 4) as u32
            })
            .collect();
        let g = repair(&input, 4);
        // Every adjacent pair in the residual sequence occurs at most once.
        let mut seen = std::collections::HashSet::new();
        for w in g.sequence.windows(2) {
            assert!(seen.insert((w[0], w[1])), "active pair {w:?} left behind");
        }
    }

    #[test]
    fn graph_adjacency_baseline() {
        // Repetitive adjacency lists compress.
        let mut triples = Vec::new();
        for v in 0..128u32 {
            for k in 1..=4u32 {
                let t = (v / 8) * 8 + k;
                if t != v {
                    triples.push((v, 0u32, t));
                }
            }
        }
        let (g, _) = Hypergraph::from_simple_edges(136, triples);
        let (grammar, bits) = encode_graph(&g);
        let (seq, _) = adjacency_sequence(&g);
        assert_eq!(grammar.expand(), seq);
        assert!(bits > 0);
    }
}
