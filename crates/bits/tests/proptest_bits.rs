//! Property tests for the bit-level substrates.

use grepair_bits::codes::{
    delta_len, read_delta, read_gamma, read_unary, write_delta, write_gamma, write_unary,
};
use grepair_bits::{BitReader, BitVec, BitWriter, RankBitVec};
use proptest::prelude::*;

proptest! {
    #[test]
    fn delta_round_trips(values in proptest::collection::vec(1u64..=u64::MAX, 0..200)) {
        let mut w = BitWriter::new();
        for &v in &values {
            write_delta(&mut w, v);
        }
        let (bytes, len) = w.finish();
        let mut r = BitReader::new(&bytes, len);
        for &v in &values {
            prop_assert_eq!(read_delta(&mut r).unwrap(), v);
        }
        prop_assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn delta_len_is_exact(v in 1u64..=u64::MAX) {
        let mut w = BitWriter::new();
        write_delta(&mut w, v);
        prop_assert_eq!(w.bit_len(), delta_len(v));
    }

    #[test]
    fn mixed_codes_round_trip(
        ops in proptest::collection::vec((0u8..3, 1u64..1_000_000), 0..100)
    ) {
        let mut w = BitWriter::new();
        for &(kind, v) in &ops {
            match kind {
                0 => write_unary(&mut w, v % 64),
                1 => write_gamma(&mut w, v),
                _ => write_delta(&mut w, v),
            }
        }
        let (bytes, len) = w.finish();
        let mut r = BitReader::new(&bytes, len);
        for &(kind, v) in &ops {
            let got = match kind {
                0 => read_unary(&mut r).unwrap(),
                1 => read_gamma(&mut r).unwrap(),
                _ => read_delta(&mut r).unwrap(),
            };
            let want = if kind == 0 { v % 64 } else { v };
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn push_bits_round_trip(
        chunks in proptest::collection::vec((0u64..=u64::MAX, 0u32..=64), 0..50)
    ) {
        let mut w = BitWriter::new();
        for &(v, width) in &chunks {
            let masked = if width == 64 { v } else { v & ((1u64 << width) - 1) };
            w.push_bits(masked, width);
        }
        let (bytes, len) = w.finish();
        let mut r = BitReader::new(&bytes, len);
        for &(v, width) in &chunks {
            let masked = if width == 64 { v } else { v & ((1u64 << width) - 1) };
            prop_assert_eq!(r.read_bits(width).unwrap(), masked);
        }
    }

    #[test]
    fn rank_matches_prefix_count(bits in proptest::collection::vec(any::<bool>(), 0..3000)) {
        let bv: BitVec = bits.iter().copied().collect();
        let rb = RankBitVec::new(bv);
        let mut count = 0usize;
        for (i, &b) in bits.iter().enumerate() {
            prop_assert_eq!(rb.rank1(i), count);
            count += b as usize;
        }
        prop_assert_eq!(rb.rank1(bits.len()), count);
        prop_assert_eq!(rb.count_ones(), count);
    }
}
