//! Bit vectors: a growable [`BitVec`] and a static [`RankBitVec`] with
//! constant-time `rank1`, the navigation primitive of k²-trees.

/// Growable bit vector backed by `u64` words.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Empty bit vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bit vector of `len` zeros.
    pub fn zeros(len: usize) -> Self {
        Self { words: vec![0; len.div_ceil(64)], len }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append a bit.
    #[inline]
    pub fn push(&mut self, bit: bool) {
        let word = self.len / 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if bit {
            // audited: word == words.len() was handled by the push just above
            self.words[word] |= 1u64 << (self.len % 64);
        }
        self.len += 1;
    }

    /// Get bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        // audited: caller contract i < len (debug_assert); words holds ceil(len/64) words
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Set bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize, bit: bool) {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i % 64);
        if bit {
            // audited: caller contract i < len (debug_assert), as in get()
            self.words[i / 64] |= mask;
        } else {
            // audited: caller contract i < len (debug_assert), as in get()
            self.words[i / 64] &= !mask;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterate over all bits.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let mut bv = BitVec::new();
        for b in iter {
            bv.push(b);
        }
        bv
    }
}

/// Static bit vector with O(1) `rank1` support.
///
/// Uses one absolute 32-bit prefix count per 512-bit superblock plus per-word
/// popcounts on demand — ~6.25 % overhead, plenty fast for k²-tree traversal
/// where each child step is one `rank1`.
#[derive(Debug, Clone)]
pub struct RankBitVec {
    bits: BitVec,
    /// `superblocks[b]` = number of ones in `words[0 .. b * WORDS_PER_BLOCK)`;
    /// defined for every `b` with `b * WORDS_PER_BLOCK ≤ words.len()`, so the
    /// lookup in `rank1` is always in bounds — including queries at the very
    /// end of the vector.
    superblocks: Vec<u32>,
    total_ones: usize,
}

const WORDS_PER_BLOCK: usize = 8;

impl RankBitVec {
    /// Build the rank directory for `bits`.
    pub fn new(bits: BitVec) -> Self {
        let mut superblocks = Vec::with_capacity(bits.words.len() / WORDS_PER_BLOCK + 2);
        superblocks.push(0);
        let mut acc = 0u32;
        for (i, w) in bits.words.iter().enumerate() {
            acc += w.count_ones();
            if (i + 1) % WORDS_PER_BLOCK == 0 {
                superblocks.push(acc);
            }
        }
        let total_ones = acc as usize;
        Self { bits, superblocks, total_ones }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// True if no bits.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Total number of set bits.
    pub fn count_ones(&self) -> usize {
        self.total_ones
    }

    /// Bit at position `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        self.bits.get(i)
    }

    /// Number of set bits strictly before position `i` (`0 ≤ i ≤ len`).
    #[inline]
    pub fn rank1(&self, i: usize) -> usize {
        debug_assert!(i <= self.bits.len);
        let word = i / 64;
        let block = word / WORDS_PER_BLOCK;
        debug_assert!(block < self.superblocks.len());
        // audited: rank1 contract i <= len; superblocks covers every block (see build)
        let mut count = self.superblocks[block] as usize;
        for w in (block * WORDS_PER_BLOCK)..word {
            // audited: w < word <= len/64 < words.len() under the rank1 contract
            count += self.bits.words[w].count_ones() as usize;
        }
        let rem = i % 64;
        if rem > 0 {
            // audited: word = i/64 with i <= len and rem > 0, so word indexes a real word
            count += (self.bits.words[word] & ((1u64 << rem) - 1)).count_ones() as usize;
        }
        count
    }

    /// Underlying bits.
    pub fn bits(&self) -> &BitVec {
        &self.bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_set() {
        let mut bv = BitVec::new();
        for i in 0..130 {
            bv.push(i % 3 == 0);
        }
        assert_eq!(bv.len(), 130);
        for i in 0..130 {
            assert_eq!(bv.get(i), i % 3 == 0, "bit {i}");
        }
        bv.set(1, true);
        assert!(bv.get(1));
        bv.set(0, false);
        assert!(!bv.get(0));
    }

    #[test]
    fn zeros_and_count() {
        let bv = BitVec::zeros(100);
        assert_eq!(bv.len(), 100);
        assert_eq!(bv.count_ones(), 0);
    }

    #[test]
    fn from_iterator() {
        let bv: BitVec = [true, false, true].into_iter().collect();
        assert_eq!(bv.len(), 3);
        assert!(bv.get(0) && !bv.get(1) && bv.get(2));
    }

    #[test]
    fn rank_matches_naive() {
        // Deterministic pseudo-random pattern crossing several superblocks.
        let mut bv = BitVec::new();
        let mut x = 0x9E3779B97F4A7C15u64;
        for _ in 0..5000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            bv.push(x & 1 == 1);
        }
        let rb = RankBitVec::new(bv.clone());
        let mut naive = 0usize;
        for i in 0..bv.len() {
            assert_eq!(rb.rank1(i), naive, "rank at {i}");
            naive += bv.get(i) as usize;
        }
        assert_eq!(rb.rank1(bv.len()), naive);
        assert_eq!(rb.count_ones(), naive);
    }

    #[test]
    fn rank_empty_and_full() {
        let rb = RankBitVec::new(BitVec::zeros(0));
        assert_eq!(rb.len(), 0);
        let ones: BitVec = (0..777).map(|_| true).collect();
        let rb = RankBitVec::new(ones);
        assert_eq!(rb.rank1(777), 777);
        assert_eq!(rb.rank1(512), 512);
        assert_eq!(rb.rank1(513), 513);
    }

    #[test]
    fn rank_at_exact_superblock_boundaries() {
        // Regression: when the word count is a multiple of the superblock
        // size, rank1 at the very end used to clamp to the previous
        // superblock and undercount — which aliased k²-tree leaves.
        for len in [512usize, 1024, 1536, 4096] {
            let ones: BitVec = (0..len).map(|_| true).collect();
            let rb = RankBitVec::new(ones);
            assert_eq!(rb.rank1(len), len, "len {len}");
            assert_eq!(rb.rank1(len - 1), len - 1);
            let alternating: BitVec = (0..len).map(|i| i % 2 == 0).collect();
            let rb = RankBitVec::new(alternating);
            assert_eq!(rb.rank1(len), len / 2);
        }
    }
}
