//! MSB-first bit writer.

/// Accumulates bits most-significant-first into a byte buffer.
///
/// The final partial byte (if any) is zero-padded on [`BitWriter::finish`];
/// the exact bit length is returned alongside so readers and size accounting
/// stay bit-precise (the paper reports sizes in bits, e.g. the 28-bit rule
/// encoding example of §III-C2).
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits already committed to `bytes` plus bits pending in `cur`.
    bit_len: u64,
    /// Pending bits, left-aligned count in `cur_bits`.
    cur: u8,
    cur_bits: u8,
}

impl BitWriter {
    /// New empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> u64 {
        self.bit_len
    }

    /// Append a single bit.
    #[inline]
    pub fn push_bit(&mut self, bit: bool) {
        self.cur = (self.cur << 1) | (bit as u8);
        self.cur_bits += 1;
        self.bit_len += 1;
        if self.cur_bits == 8 {
            self.bytes.push(self.cur);
            self.cur = 0;
            self.cur_bits = 0;
        }
    }

    /// Append the `width` low bits of `value`, most significant first.
    ///
    /// `width` may be 0 (writes nothing) up to 64.
    #[inline]
    pub fn push_bits(&mut self, value: u64, width: u32) {
        debug_assert!(width <= 64);
        debug_assert!(width == 64 || value < (1u64 << width), "value wider than width");
        for i in (0..width).rev() {
            self.push_bit((value >> i) & 1 == 1);
        }
    }

    /// Append every bit of another writer's finished stream.
    pub fn extend_from(&mut self, other: &BitWriter) {
        for i in 0..other.bit_len() {
            self.push_bit(other.peek_bit(i));
        }
    }

    /// Read back bit `idx` of the stream written so far (for extend/tests).
    fn peek_bit(&self, idx: u64) -> bool {
        let byte = (idx / 8) as usize;
        let off = (idx % 8) as u8;
        if byte < self.bytes.len() {
            // audited: guarded by the byte < bytes.len() branch
            (self.bytes[byte] >> (7 - off)) & 1 == 1
        } else {
            let local = (idx - self.bytes.len() as u64 * 8) as u8;
            debug_assert!(local < self.cur_bits);
            (self.cur >> (self.cur_bits - 1 - local)) & 1 == 1
        }
    }

    /// Finish the stream: pad the trailing byte with zeros and return
    /// `(bytes, exact_bit_length)`.
    pub fn finish(mut self) -> (Vec<u8>, u64) {
        if self.cur_bits > 0 {
            let pad = 8 - self.cur_bits;
            self.bytes.push(self.cur << pad);
            self.cur = 0;
            self.cur_bits = 0;
        }
        (self.bytes, self.bit_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_writer() {
        let (bytes, len) = BitWriter::new().finish();
        assert!(bytes.is_empty());
        assert_eq!(len, 0);
    }

    #[test]
    fn single_bits_pack_msb_first() {
        let mut w = BitWriter::new();
        for b in [true, false, true, true] {
            w.push_bit(b);
        }
        let (bytes, len) = w.finish();
        assert_eq!(len, 4);
        assert_eq!(bytes, vec![0b1011_0000]);
    }

    #[test]
    fn multi_byte_values() {
        let mut w = BitWriter::new();
        w.push_bits(0b1_0101_0101, 9);
        w.push_bits(0b111, 3);
        let (bytes, len) = w.finish();
        assert_eq!(len, 12);
        assert_eq!(bytes, vec![0b1010_1010, 0b1111_0000]);
    }

    #[test]
    fn zero_width_is_noop() {
        let mut w = BitWriter::new();
        w.push_bits(0, 0);
        assert_eq!(w.bit_len(), 0);
    }

    #[test]
    fn full_width_64() {
        let mut w = BitWriter::new();
        w.push_bits(u64::MAX, 64);
        let (bytes, len) = w.finish();
        assert_eq!(len, 64);
        assert_eq!(bytes, vec![0xFF; 8]);
    }

    #[test]
    fn extend_concatenates_bit_exactly() {
        let mut a = BitWriter::new();
        a.push_bits(0b101, 3);
        let mut b = BitWriter::new();
        b.push_bits(0b01, 2);
        a.extend_from(&b);
        let (bytes, len) = a.finish();
        assert_eq!(len, 5);
        assert_eq!(bytes, vec![0b1010_1000]);
    }
}
