//! MSB-first bit reader over a byte slice.

use crate::{BitError, Result};

/// Reads bits most-significant-first from a byte slice, bounded by an exact
/// bit length (so zero padding from [`crate::BitWriter::finish`] is never
/// mistaken for data).
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    bit_len: u64,
    pos: u64,
}

impl<'a> BitReader<'a> {
    /// Reader over `bytes` containing exactly `bit_len` valid bits.
    ///
    /// `bit_len` is clamped to the bits actually present: a hostile header
    /// claiming more bits than the buffer holds must surface as
    /// [`BitError::UnexpectedEnd`] on the read that runs out, never as an
    /// out-of-bounds byte index.
    pub fn new(bytes: &'a [u8], bit_len: u64) -> Self {
        let bit_len = bit_len.min(bytes.len() as u64 * 8);
        Self { bytes, bit_len, pos: 0 }
    }

    /// Current read position in bits.
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// Bits left to read.
    pub fn remaining(&self) -> u64 {
        self.bit_len - self.pos
    }

    /// Read one bit.
    #[inline]
    pub fn read_bit(&mut self) -> Result<bool> {
        if self.pos >= self.bit_len {
            return Err(BitError::UnexpectedEnd);
        }
        let byte = (self.pos / 8) as usize;
        let off = (self.pos % 8) as u32;
        self.pos += 1;
        // audited: new() clamps bit_len to bytes.len()*8, and pos < bit_len here
        Ok((self.bytes[byte] >> (7 - off)) & 1 == 1)
    }

    /// Read `width` bits as the low bits of a `u64`, MSB first.
    #[inline]
    pub fn read_bits(&mut self, width: u32) -> Result<u64> {
        debug_assert!(width <= 64);
        if self.remaining() < width as u64 {
            return Err(BitError::UnexpectedEnd);
        }
        let mut v = 0u64;
        for _ in 0..width {
            v = (v << 1) | self.read_bit()? as u64;
        }
        Ok(v)
    }

    /// Skip `n` bits.
    pub fn skip(&mut self, n: u64) -> Result<()> {
        if self.remaining() < n {
            return Err(BitError::UnexpectedEnd);
        }
        self.pos += n;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BitWriter;

    #[test]
    fn round_trip_bits() {
        let mut w = BitWriter::new();
        w.push_bits(0b1011, 4);
        w.push_bits(0xDEAD_BEEF, 32);
        w.push_bit(true);
        let (bytes, len) = w.finish();

        let mut r = BitReader::new(&bytes, len);
        assert_eq!(r.read_bits(4).unwrap(), 0b1011);
        assert_eq!(r.read_bits(32).unwrap(), 0xDEAD_BEEF);
        assert!(r.read_bit().unwrap());
        assert_eq!(r.remaining(), 0);
        assert_eq!(r.read_bit(), Err(BitError::UnexpectedEnd));
    }

    #[test]
    fn padding_is_not_readable() {
        let mut w = BitWriter::new();
        w.push_bits(0b101, 3);
        let (bytes, len) = w.finish();
        assert_eq!(bytes.len(), 1); // padded to a byte
        let mut r = BitReader::new(&bytes, len);
        r.skip(3).unwrap();
        assert_eq!(r.read_bit(), Err(BitError::UnexpectedEnd));
    }

    #[test]
    fn lying_bit_len_is_clamped() {
        // A header claiming 10^6 bits over a 2-byte buffer: reads succeed
        // for the 16 real bits, then error — no out-of-bounds access.
        let bytes = [0xAB, 0xCD];
        let mut r = BitReader::new(&bytes, 1_000_000);
        assert_eq!(r.remaining(), 16);
        assert_eq!(r.read_bits(16).unwrap(), 0xABCD);
        assert_eq!(r.read_bit(), Err(BitError::UnexpectedEnd));
        // Empty buffer, nonzero claim.
        let mut r = BitReader::new(&[], 64);
        assert_eq!(r.remaining(), 0);
        assert_eq!(r.read_bit(), Err(BitError::UnexpectedEnd));
    }

    #[test]
    fn skip_moves_position() {
        let mut w = BitWriter::new();
        w.push_bits(0b1111_0000, 8);
        let (bytes, len) = w.finish();
        let mut r = BitReader::new(&bytes, len);
        r.skip(4).unwrap();
        assert_eq!(r.read_bits(4).unwrap(), 0);
        assert!(r.skip(1).is_err());
    }
}
