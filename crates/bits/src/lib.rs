//! Bit-level primitives for the gRePair grammar codec and the k²-tree.
//!
//! The paper's output format (§III-C2) is a raw bit stream: k²-tree bitmaps
//! for the start graph, Elias δ-codes ("variable-length δ-code \[27\]") for
//! rule edge lists, and fixed-width codes for hyperedge permutations. This
//! crate provides those primitives:
//!
//! * [`BitWriter`] / [`BitReader`] — MSB-first bit streams over byte buffers,
//! * [`codes`] — unary, Elias γ and Elias δ codes, fixed-width and minimal
//!   binary codes,
//! * [`bitvec`] — a plain growable bit vector plus [`bitvec::RankBitVec`],
//!   a static bit vector with O(1) `rank1` used for k²-tree navigation.

#![forbid(unsafe_code)]

pub mod bitvec;
pub mod codes;
pub mod reader;
pub mod writer;

pub use bitvec::{BitVec, RankBitVec};
pub use reader::BitReader;
pub use writer::BitWriter;

/// Errors produced when decoding a bit stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BitError {
    /// The reader ran past the end of the stream.
    UnexpectedEnd,
    /// A code word was malformed (e.g. a δ-code describing a 0-length value).
    InvalidCode(&'static str),
}

impl std::fmt::Display for BitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BitError::UnexpectedEnd => write!(f, "unexpected end of bit stream"),
            BitError::InvalidCode(what) => write!(f, "invalid code word: {what}"),
        }
    }
}

impl std::error::Error for BitError {}

/// Result alias for bit-stream decoding.
pub type Result<T> = std::result::Result<T, BitError>;
