//! Integer codes: unary, Elias γ, Elias δ, and fixed-width helpers.
//!
//! The grammar codec (§III-C2 of the paper) writes rule edge lists with
//! "variable-length δ-codes" (Elias \[27\]) and hyperedge permutation indices
//! with ⌈log n⌉-bit fixed-length codes. Elias codes are defined for integers
//! ≥ 1; the paper's node IDs and labels are 1-based so that matches directly.
//! Where our 0-based internal IDs are encoded, callers shift by one.

use crate::{BitError, BitReader, BitWriter, Result};

/// Number of bits in the minimal binary representation of `n` (`n ≥ 1`).
#[inline]
pub fn bit_width(n: u64) -> u32 {
    debug_assert!(n >= 1);
    64 - n.leading_zeros()
}

/// Bits needed by a fixed-width code addressing `n` distinct values.
///
/// This is the `⌈log n⌉` of the paper's permutation encoding, with the
/// convention that a single value still takes 1 bit (a 0-bit code cannot be
/// delimited in a stream we also need to size).
#[inline]
pub fn ceil_log2(n: u64) -> u32 {
    match n {
        0 | 1 => 1,
        _ => 64 - (n - 1).leading_zeros(),
    }
}

/// Write `n` in unary: `n` zeros then a one. Defined for `n ≥ 0`.
pub fn write_unary(w: &mut BitWriter, n: u64) {
    for _ in 0..n {
        w.push_bit(false);
    }
    w.push_bit(true);
}

/// Read a unary code.
pub fn read_unary(r: &mut BitReader<'_>) -> Result<u64> {
    let mut n = 0;
    while !r.read_bit()? {
        n += 1;
    }
    Ok(n)
}

/// Write Elias γ: unary length of the binary representation, then the
/// representation without its leading 1. Defined for `n ≥ 1`.
pub fn write_gamma(w: &mut BitWriter, n: u64) {
    assert!(n >= 1, "Elias gamma is defined for n >= 1");
    let width = bit_width(n);
    write_unary(w, (width - 1) as u64);
    w.push_bits(n & !(1 << (width - 1)), width - 1);
}

/// Read an Elias γ code.
pub fn read_gamma(r: &mut BitReader<'_>) -> Result<u64> {
    let width_minus_1 = read_unary(r)?;
    if width_minus_1 >= 64 {
        return Err(BitError::InvalidCode("gamma length >= 64"));
    }
    let rest = r.read_bits(width_minus_1 as u32)?;
    Ok((1 << width_minus_1) | rest)
}

/// Write Elias δ: the bit width is itself γ-coded. Defined for `n ≥ 1`.
///
/// This is the `δ(·)` used throughout §III-C2, e.g. the rule encoding example
/// `δ(2) 0 δ(2) 1 δ(1) 1 δ(2) δ(1) …` that totals 28 bits.
pub fn write_delta(w: &mut BitWriter, n: u64) {
    assert!(n >= 1, "Elias delta is defined for n >= 1");
    let width = bit_width(n);
    write_gamma(w, width as u64);
    w.push_bits(n & !(1 << (width - 1)), width - 1);
}

/// Read an Elias δ code.
pub fn read_delta(r: &mut BitReader<'_>) -> Result<u64> {
    let width = read_gamma(r)?;
    if width == 0 || width > 64 {
        return Err(BitError::InvalidCode("delta width out of range"));
    }
    let rest = r.read_bits((width - 1) as u32)?;
    Ok(if width == 64 {
        (1 << 63) | rest
    } else {
        (1 << (width - 1)) | rest
    })
}

/// Bit length of the δ-code of `n` without writing it (for size estimates).
pub fn delta_len(n: u64) -> u64 {
    assert!(n >= 1);
    let width = bit_width(n) as u64;
    let gamma_len = 2 * (bit_width(width) as u64 - 1) + 1;
    gamma_len + width - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_delta(values: &[u64]) {
        let mut w = BitWriter::new();
        for &v in values {
            write_delta(&mut w, v);
        }
        let (bytes, len) = w.finish();
        let mut r = BitReader::new(&bytes, len);
        for &v in values {
            assert_eq!(read_delta(&mut r).unwrap(), v);
        }
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn gamma_known_codewords() {
        // gamma(1) = "1", gamma(2) = "010", gamma(5) = "00101"
        for (n, expect, bits) in [(1u64, 0b1u64, 1u32), (2, 0b010, 3), (5, 0b00101, 5)] {
            let mut w = BitWriter::new();
            write_gamma(&mut w, n);
            assert_eq!(w.bit_len(), bits as u64);
            let (bytes, len) = w.finish();
            let mut r = BitReader::new(&bytes, len);
            assert_eq!(r.read_bits(bits).unwrap(), expect);
            let mut r = BitReader::new(&bytes, len);
            assert_eq!(read_gamma(&mut r).unwrap(), n);
        }
    }

    #[test]
    fn delta_known_codewords() {
        // delta(1) = "1" (1 bit), delta(2) = "0100" (4), delta(3) = "0101",
        // delta(17) = gamma(5) + "0001" = "00101" + "0001" (9 bits)
        let mut w = BitWriter::new();
        write_delta(&mut w, 1);
        assert_eq!(w.bit_len(), 1);
        let mut w = BitWriter::new();
        write_delta(&mut w, 2);
        assert_eq!(w.bit_len(), 4);
        let mut w = BitWriter::new();
        write_delta(&mut w, 17);
        assert_eq!(w.bit_len(), 9);
    }

    #[test]
    fn delta_round_trip_small_and_large() {
        round_trip_delta(&[1, 2, 3, 4, 5, 100, 1000, u32::MAX as u64, u64::MAX / 2]);
    }

    #[test]
    fn delta_len_matches_written_length() {
        for n in [1u64, 2, 3, 7, 8, 255, 256, 1 << 20, u64::MAX] {
            let mut w = BitWriter::new();
            write_delta(&mut w, n);
            assert_eq!(delta_len(n), w.bit_len(), "n={n}");
        }
    }

    #[test]
    fn delta_max_value() {
        round_trip_delta(&[u64::MAX]);
    }

    #[test]
    fn unary_round_trip() {
        let mut w = BitWriter::new();
        for n in 0..20u64 {
            write_unary(&mut w, n);
        }
        let (bytes, len) = w.finish();
        let mut r = BitReader::new(&bytes, len);
        for n in 0..20u64 {
            assert_eq!(read_unary(&mut r).unwrap(), n);
        }
    }

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 1);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1024), 10);
        assert_eq!(ceil_log2(1025), 11);
    }

    #[test]
    fn truncated_stream_errors() {
        let mut w = BitWriter::new();
        write_delta(&mut w, 1000);
        let (bytes, len) = w.finish();
        let mut r = BitReader::new(&bytes, len - 3);
        assert!(read_delta(&mut r).is_err());
    }
}
