//! The checked-in allowlist (`analyze.allow` at the workspace root).
//!
//! Grammar (DESIGN.md §9): one entry per line, `#` starts a comment.
//!
//! ```text
//! <rule-id> <path> <reason…>
//! ```
//!
//! An entry suppresses every finding of `<rule-id>` in `<path>`. The
//! reason is mandatory — an entry without one is itself reported — and an
//! entry that suppresses nothing is reported too, so the allowlist can
//! only ever shrink to match reality. Inline `// audited:` annotations are
//! the preferred mechanism (they sit next to the code they excuse); the
//! allowlist exists for findings with no line to annotate (e.g. a
//! generated file) or for temporarily grandfathering a whole file during
//! a sweep.

use crate::rules::{Finding, Rule};

/// One parsed allowlist entry.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// 1-based line in the allowlist file (for reporting).
    pub line: u32,
    pub rule: Rule,
    pub path: String,
    pub reason: String,
}

/// The parsed allowlist plus any findings about the list itself.
#[derive(Debug, Default)]
pub struct Allowlist {
    pub entries: Vec<AllowEntry>,
    /// Malformed lines, reported as `annotation` findings.
    pub findings: Vec<Finding>,
}

impl Allowlist {
    /// Parse allowlist text. `rel_path` names the file in findings.
    pub fn parse(rel_path: &str, text: &str) -> Allowlist {
        let mut list = Allowlist::default();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx as u32 + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, char::is_whitespace);
            let rule_id = parts.next().unwrap_or_default();
            let path = parts.next().unwrap_or_default().to_string();
            let reason = parts.next().unwrap_or_default().trim().to_string();
            let Some(rule) = Rule::from_id(rule_id) else {
                list.findings.push(Finding {
                    file: rel_path.to_string(),
                    line: line_no,
                    rule: Rule::Annotation,
                    message: format!("allowlist entry names unknown rule {rule_id:?}"),
                });
                continue;
            };
            if path.is_empty() || reason.is_empty() {
                list.findings.push(Finding {
                    file: rel_path.to_string(),
                    line: line_no,
                    rule: Rule::Annotation,
                    message: "allowlist entry needs `<rule> <path> <reason…>` — the reason is mandatory".to_string(),
                });
                continue;
            }
            list.entries.push(AllowEntry { line: line_no, rule, path, reason });
        }
        list
    }

    /// Drop findings covered by an entry; report entries that covered
    /// nothing. `rel_path` names the allowlist file in those reports.
    pub fn apply(&self, rel_path: &str, findings: Vec<Finding>) -> Vec<Finding> {
        let mut used = vec![false; self.entries.len()];
        let mut kept: Vec<Finding> = findings
            .into_iter()
            .filter(|f| {
                let covered = self.entries.iter().enumerate().find(|(_, e)| {
                    e.rule == f.rule && e.path == f.file
                });
                match covered {
                    Some((i, _)) => {
                        used[i] = true;
                        false
                    }
                    None => true,
                }
            })
            .collect();
        kept.extend(self.findings.iter().cloned());
        for (entry, used) in self.entries.iter().zip(used) {
            if !used {
                kept.push(Finding {
                    file: rel_path.to_string(),
                    line: entry.line,
                    rule: Rule::Annotation,
                    message: format!(
                        "allowlist entry `{} {}` suppresses nothing — remove it",
                        entry.rule.id(),
                        entry.path
                    ),
                });
            }
        }
        kept.sort();
        kept
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, rule: Rule) -> Finding {
        Finding { file: file.into(), line: 3, rule, message: "x".into() }
    }

    #[test]
    fn entries_suppress_matching_findings_only() {
        let list = Allowlist::parse(
            "analyze.allow",
            "# comment\npanic-surface crates/store/src/x.rs generated table\n",
        );
        assert_eq!(list.entries.len(), 1);
        let out = list.apply(
            "analyze.allow",
            vec![
                finding("crates/store/src/x.rs", Rule::PanicSurface),
                finding("crates/store/src/y.rs", Rule::PanicSurface),
                finding("crates/store/src/x.rs", Rule::Layering),
            ],
        );
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out.iter().all(|f| !(f.file.ends_with("x.rs") && f.rule == Rule::PanicSurface)));
    }

    #[test]
    fn reasons_are_mandatory() {
        let list = Allowlist::parse("analyze.allow", "panic-surface crates/store/src/x.rs\n");
        assert!(list.entries.is_empty());
        assert_eq!(list.findings.len(), 1);
        assert_eq!(list.findings[0].rule, Rule::Annotation);
    }

    #[test]
    fn unknown_rules_are_reported() {
        let list = Allowlist::parse("analyze.allow", "bogus-rule path because\n");
        assert_eq!(list.findings.len(), 1);
        assert!(list.findings[0].message.contains("unknown rule"));
    }

    #[test]
    fn unused_entries_are_reported() {
        let list =
            Allowlist::parse("analyze.allow", "layering crates/store/src/x.rs old excuse\n");
        let out = list.apply("analyze.allow", Vec::new());
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("suppresses nothing"));
    }
}
