//! A lightweight Rust lexer — just enough token structure for the source
//! rules of DESIGN.md §9, with no `syn` in the offline dependency set.
//!
//! The rules only need to know, reliably, what is *code* and what is not:
//! every pattern the analyzer hunts (`.unwrap()`, `unsafe`, `println!`,
//! indexing brackets) also appears constantly inside comments, doc text,
//! and string literals, so the lexer's whole job is classifying those
//! regions exactly — line comments, nested block comments, normal and raw
//! (and byte/C) strings, char literals vs lifetimes — and otherwise
//! emitting a flat token stream with line numbers. It does not parse:
//! generics, shifts (`<<` vs `Vec<Vec<_>>`), and every other ambiguity
//! that needs a grammar simply come out as single-character punctuation
//! tokens, which is all the rule patterns consume.

/// What a [`Token`] is, at the granularity the rules care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (the lexer does not distinguish).
    Ident,
    /// A lifetime such as `'a` (no closing quote).
    Lifetime,
    /// Numeric literal, including suffixes (`1.5e3`, `0xffu32`).
    Number,
    /// Any string-like literal: `"…"`, `r#"…"#`, `b"…"`, `c"…"`, …
    Str,
    /// Char or byte-char literal: `'x'`, `'\n'`, `b'x'`.
    Char,
    /// One character of punctuation. Multi-character operators arrive as
    /// consecutive tokens (`::` is two `:`), which the rules re-assemble.
    Punct,
}

/// One lexed token with the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based line of the token's last character (strings span lines).
    pub end_line: u32,
}

/// One comment (line or block), kept out of the token stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based first line.
    pub line: u32,
    /// 1-based last line (block comments span lines).
    pub end_line: u32,
    /// Full text including the `//` / `/* */` markers.
    pub text: String,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    out: Lexed,
}

impl<'a> Lexer<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek(0)?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn slice(&self, from: usize) -> String {
        String::from_utf8_lossy(&self.src[from..self.pos]).into_owned()
    }

    fn push(&mut self, kind: TokenKind, from: usize, line: u32) {
        let text = self.slice(from);
        self.out.tokens.push(Token { kind, text, line, end_line: self.line });
    }

    /// Consume a `//…` comment (cursor on the first `/`).
    fn line_comment(&mut self) {
        let (from, line) = (self.pos, self.line);
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
        let text = self.slice(from);
        self.out.comments.push(Comment { line, end_line: line, text });
    }

    /// Consume a `/* … */` comment, honoring nesting (cursor on the `/`).
    fn block_comment(&mut self) {
        let (from, line) = (self.pos, self.line);
        self.bump();
        self.bump(); // the opening `/*`
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break, // unterminated: tolerate, we only classify
            }
        }
        let text = self.slice(from);
        self.out.comments.push(Comment { line, end_line: self.line, text });
    }

    /// Consume a normal (escaped) string body; cursor on the opening `"`.
    fn escaped_string(&mut self, from: usize, line: u32) {
        self.bump(); // opening quote
        while let Some(b) = self.bump() {
            match b {
                b'\\' => {
                    self.bump(); // whatever is escaped, including `"` and `\`
                }
                b'"' => break,
                _ => {}
            }
        }
        self.push(TokenKind::Str, from, line);
    }

    /// Consume a raw string `r##"…"##`; cursor on the first `#` or `"`.
    fn raw_string(&mut self, from: usize, line: u32) {
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        'body: while let Some(b) = self.bump() {
            if b == b'"' {
                for i in 0..hashes {
                    if self.peek(i) != Some(b'#') {
                        continue 'body;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.push(TokenKind::Str, from, line);
    }

    /// Cursor on a `'`: a char literal or a lifetime.
    fn quote(&mut self, from: usize, line: u32) {
        self.bump(); // the `'`
        match self.peek(0) {
            Some(b'\\') => {
                // Escaped char literal: scan to the closing quote.
                self.bump();
                self.bump(); // the escaped character (enough for \u{…} too:
                             // the braces cannot contain a quote)
                while let Some(b) = self.peek(0) {
                    self.bump();
                    if b == b'\'' {
                        break;
                    }
                }
                self.push(TokenKind::Char, from, line);
            }
            Some(b) if is_ident_start(b) || b.is_ascii_digit() => {
                while self.peek(0).is_some_and(is_ident_continue) {
                    self.bump();
                }
                if self.peek(0) == Some(b'\'') {
                    self.bump();
                    self.push(TokenKind::Char, from, line); // 'a', '_'
                } else {
                    self.push(TokenKind::Lifetime, from, line); // 'a, 'static
                }
            }
            Some(_) => {
                // A punctuation char literal like '(' or ' '.
                self.bump();
                if self.peek(0) == Some(b'\'') {
                    self.bump();
                }
                self.push(TokenKind::Char, from, line);
            }
            None => self.push(TokenKind::Punct, from, line),
        }
    }

    /// Cursor on a digit.
    fn number(&mut self, from: usize, line: u32) {
        while self.peek(0).is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_') {
            self.bump();
        }
        // A fractional part only if `.` is followed by a digit — `1..3` and
        // tuple access `x.0` keep their `.` as punctuation.
        if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|b| b.is_ascii_digit()) {
            self.bump();
            while self.peek(0).is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_') {
                self.bump();
            }
        }
        // Exponent sign (`1e-3`): the alphanumeric scan above already took
        // the `e`; a following sign+digits still belongs to the number.
        if matches!(self.peek(0), Some(b'+') | Some(b'-'))
            && self
                .src
                .get(self.pos.wrapping_sub(1))
                .is_some_and(|b| matches!(b, b'e' | b'E'))
            && self.peek(1).is_some_and(|b| b.is_ascii_digit())
        {
            self.bump();
            while self.peek(0).is_some_and(|b| b.is_ascii_digit()) {
                self.bump();
            }
        }
        self.push(TokenKind::Number, from, line);
    }

    /// Cursor on an identifier start: an ident, or a string-literal prefix.
    fn ident_or_prefixed(&mut self, from: usize, line: u32) {
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump();
        }
        let ident = self.slice(from);
        match (ident.as_str(), self.peek(0)) {
            // Raw strings: r"…", r#"…"#, br#"…"#, cr"…".
            ("r" | "br" | "cr", Some(b'"')) | ("r" | "br" | "cr", Some(b'#'))
                if self.raw_quote_follows() =>
            {
                self.raw_string(from, line);
            }
            // Escaped strings with a prefix: b"…", c"…".
            ("b" | "c", Some(b'"')) => self.escaped_string(from, line),
            // Byte char: b'x'.
            ("b", Some(b'\'')) => self.quote(from, line),
            // Raw identifier r#match: consume `#` + the identifier.
            ("r", Some(b'#')) if self.peek(1).is_some_and(is_ident_start) => {
                self.bump();
                while self.peek(0).is_some_and(is_ident_continue) {
                    self.bump();
                }
                self.push(TokenKind::Ident, from, line);
            }
            _ => self.push(TokenKind::Ident, from, line),
        }
    }

    /// After an `r`/`br`/`cr` prefix: does `#*"` follow? (Distinguishes a
    /// raw string from a raw identifier or a lone ident before an attr.)
    fn raw_quote_follows(&self) -> bool {
        let mut i = 0;
        while self.peek(i) == Some(b'#') {
            i += 1;
        }
        self.peek(i) == Some(b'"')
    }

    fn run(mut self) -> Lexed {
        while let Some(b) = self.peek(0) {
            let (from, line) = (self.pos, self.line);
            match b {
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.escaped_string(from, line),
                b'\'' => self.quote(from, line),
                _ if b.is_ascii_whitespace() => {
                    self.bump();
                }
                _ if b.is_ascii_digit() => self.number(from, line),
                _ if is_ident_start(b) => self.ident_or_prefixed(from, line),
                _ => {
                    self.bump();
                    self.push(TokenKind::Punct, from, line);
                }
            }
        }
        self.out
    }
}

/// Lex `source` into tokens and comments. Never fails: unterminated
/// constructs are tolerated (the analyzer classifies, the compiler judges).
pub fn lex(source: &str) -> Lexed {
    Lexer { src: source.as_bytes(), pos: 0, line: 1, out: Lexed::default() }.run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).tokens.into_iter().map(|t| (t.kind, t.text)).collect()
    }

    fn texts(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn idents_keywords_and_puncts() {
        assert_eq!(
            texts("fn f(x: u32) -> u32 { x }"),
            ["fn", "f", "(", "x", ":", "u32", ")", "-", ">", "u32", "{", "x", "}"]
        );
    }

    #[test]
    fn shift_vs_nested_generics_both_lex_as_angle_puncts() {
        // `<<` is two `<` tokens, exactly like the close of a nested
        // generic is two `>` tokens — the rules never need to know which.
        assert_eq!(texts("1 << k"), ["1", "<", "<", "k"]);
        assert_eq!(
            texts("Vec<Vec<u8>> >> x"),
            ["Vec", "<", "Vec", "<", "u8", ">", ">", ">", ">", "x"]
        );
    }

    #[test]
    fn line_and_nested_block_comments_are_not_tokens() {
        let lexed = lex("a // unwrap() in a comment\nb /* outer /* inner */ still */ c");
        let toks: Vec<_> = lexed.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(toks, ["a", "b", "c"]);
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[0].text, "// unwrap() in a comment");
        assert_eq!(lexed.comments[1].text, "/* outer /* inner */ still */");
        assert_eq!(lexed.tokens[2].line, 2, "`c` sits on line 2");
    }

    #[test]
    fn block_comment_line_spans() {
        let lexed = lex("/* a\nb\nc */ x");
        assert_eq!(lexed.comments[0].line, 1);
        assert_eq!(lexed.comments[0].end_line, 3);
        assert_eq!(lexed.tokens[0].line, 3);
    }

    #[test]
    fn strings_swallow_their_contents() {
        // The `.unwrap()` and `//` inside are literal text, not tokens.
        let lexed = lex(r#"let s = "x.unwrap() // not a comment";"#);
        assert_eq!(
            lexed.tokens.iter().map(|t| t.kind).collect::<Vec<_>>(),
            [
                TokenKind::Ident,
                TokenKind::Ident,
                TokenKind::Punct,
                TokenKind::Str,
                TokenKind::Punct
            ]
        );
        assert!(lexed.comments.is_empty());
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let lexed = lex(r#""a\"b" c"#);
        assert_eq!(lexed.tokens[0].text, r#""a\"b""#);
        assert_eq!(lexed.tokens[1].text, "c");
    }

    #[test]
    fn raw_strings_ignore_escapes_and_inner_quotes() {
        let lexed = lex(r###"let s = r#"a "quoted" \ b"# ;"###);
        assert_eq!(lexed.tokens[3].kind, TokenKind::Str);
        assert_eq!(lexed.tokens[3].text, r##"r#"a "quoted" \ b"#"##);
        assert_eq!(lexed.tokens[4].text, ";");
        // More hashes than the terminator candidates inside.
        let lexed = lex(r####"r##"has "# inside"## x"####);
        assert_eq!(lexed.tokens[0].kind, TokenKind::Str);
        assert_eq!(lexed.tokens[1].text, "x");
    }

    #[test]
    fn byte_and_c_strings() {
        assert_eq!(kinds(r#"b"bytes""#)[0].0, TokenKind::Str);
        assert_eq!(kinds(r#"c"cstr""#)[0].0, TokenKind::Str);
        assert_eq!(kinds(r##"br#"raw bytes"#"##)[0].0, TokenKind::Str);
    }

    #[test]
    fn chars_vs_lifetimes() {
        assert_eq!(kinds("'a'")[0].0, TokenKind::Char);
        assert_eq!(kinds("'\\n'")[0].0, TokenKind::Char);
        assert_eq!(kinds("'\\''")[0].0, TokenKind::Char);
        assert_eq!(kinds("b'x'")[0].0, TokenKind::Char);
        assert_eq!(kinds("'('")[0].0, TokenKind::Char);
        let toks = kinds("&'a str");
        assert_eq!(toks[1], (TokenKind::Lifetime, "'a".into()));
        assert_eq!(kinds("'static")[0], (TokenKind::Lifetime, "'static".into()));
        // A lifetime followed by code containing quotes must not derail.
        assert_eq!(
            texts("fn f<'a>(x: &'a str) {}"),
            ["fn", "f", "<", "'a", ">", "(", "x", ":", "&", "'a", "str", ")", "{", "}"]
        );
    }

    #[test]
    fn raw_identifiers() {
        assert_eq!(kinds("r#match")[0], (TokenKind::Ident, "r#match".into()));
        // …while `r` alone stays an ident.
        assert_eq!(kinds("r + 1")[0], (TokenKind::Ident, "r".into()));
    }

    #[test]
    fn numbers_including_float_dots_and_suffixes() {
        assert_eq!(kinds("1.5e-3")[0], (TokenKind::Number, "1.5e-3".into()));
        assert_eq!(kinds("0xffu32")[0], (TokenKind::Number, "0xffu32".into()));
        // Ranges keep their dots as punctuation…
        assert_eq!(texts("0..10"), ["0", ".", ".", "10"]);
        // …and tuple access keeps its dot too.
        assert_eq!(texts("x.0"), ["x", ".", "0"]);
    }

    #[test]
    fn doc_comments_are_comments() {
        let lexed = lex("/// outer doc with .unwrap()\n//! inner doc\nfn f() {}");
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.tokens[0].text, "fn");
    }
}
