//! The embedded fixture corpus: known-bad snippets that must each fire
//! their rule exactly once, alongside an annotated twin that must not
//! (DESIGN.md §9). `grepair-analyze --self-test` runs this from the
//! release binary in CI, and `tests/fixtures.rs` runs it under `cargo
//! test` — one corpus, two harnesses.

use crate::rules::{check_source, Anchors, FileClass, Finding, Rule};

/// One fixture: a source file from `fixtures/`, the class it is checked
/// under, and the single rule expected to fire `expected` times.
pub struct Fixture {
    pub name: &'static str,
    pub source: &'static str,
    /// Checked as a boundary-crate file? (panic-surface applies)
    pub boundary: bool,
    pub rule: Rule,
    pub expected: usize,
}

/// The corpus. Expectation: for each entry, analysis yields exactly
/// `expected` findings, all of rule `rule` — so the bad snippet is caught
/// and the annotated twin is not.
pub const FIXTURES: &[Fixture] = &[
    Fixture {
        name: "panic_unwrap.rs",
        source: include_str!("../fixtures/panic_unwrap.rs"),
        boundary: true,
        rule: Rule::PanicSurface,
        expected: 1,
    },
    Fixture {
        name: "panic_expect.rs",
        source: include_str!("../fixtures/panic_expect.rs"),
        boundary: true,
        rule: Rule::PanicSurface,
        expected: 1,
    },
    Fixture {
        name: "panic_macro.rs",
        source: include_str!("../fixtures/panic_macro.rs"),
        boundary: true,
        rule: Rule::PanicSurface,
        expected: 1,
    },
    Fixture {
        name: "panic_index.rs",
        source: include_str!("../fixtures/panic_index.rs"),
        boundary: true,
        rule: Rule::PanicSurface,
        expected: 1,
    },
    Fixture {
        name: "lock_poison.rs",
        source: include_str!("../fixtures/lock_poison.rs"),
        boundary: false,
        rule: Rule::LockPoisoning,
        expected: 1,
    },
    Fixture {
        name: "unsafe_hygiene.rs",
        source: include_str!("../fixtures/unsafe_hygiene.rs"),
        boundary: false,
        rule: Rule::UnsafeHygiene,
        expected: 1,
    },
    Fixture {
        name: "doc_anchor.rs",
        source: include_str!("../fixtures/doc_anchor.rs"),
        boundary: false,
        rule: Rule::DocAnchors,
        expected: 1,
    },
    Fixture {
        name: "layering.rs",
        source: include_str!("../fixtures/layering.rs"),
        boundary: false,
        rule: Rule::Layering,
        expected: 1,
    },
    Fixture {
        name: "test_exempt.rs",
        source: include_str!("../fixtures/test_exempt.rs"),
        boundary: true,
        rule: Rule::PanicSurface,
        expected: 0,
    },
];

/// The anchor set fixtures resolve against: only sections 2 and 9 exist,
/// so the corpus's dangling reference (to section 99) stays dangling.
pub fn fixture_anchors() -> Anchors {
    Anchors::from_design("## §2 Error-handling policy\n\n## §9 Static analysis\n")
}

/// Analyze one fixture under its class.
pub fn check_fixture(fixture: &Fixture) -> Vec<Finding> {
    let class = FileClass {
        rel_path: format!("fixtures/{}", fixture.name),
        boundary: fixture.boundary,
        bin_root: false,
    };
    check_source(&class, fixture.source, &fixture_anchors(), None)
}

/// Run the whole corpus; `Ok` carries a one-line summary, `Err` the first
/// mismatch, with its findings rendered for diagnosis.
pub fn run() -> Result<String, String> {
    for fixture in FIXTURES {
        let findings = check_fixture(fixture);
        let of_rule = findings.iter().filter(|f| f.rule == fixture.rule).count();
        if of_rule != fixture.expected || findings.len() != fixture.expected {
            let rendered: Vec<String> = findings.iter().map(|f| format!("  {f}")).collect();
            return Err(format!(
                "fixture {}: expected exactly {} {} finding(s), got {}:\n{}",
                fixture.name,
                fixture.expected,
                fixture.rule.id(),
                findings.len(),
                rendered.join("\n")
            ));
        }
    }
    Ok(format!("self-test ok: {} fixtures, each rule fires exactly as expected", FIXTURES.len()))
}
