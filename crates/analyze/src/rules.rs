//! The rule families of DESIGN.md §9, applied to one lexed source file.
//!
//! Every rule is a pattern over the token stream of [`crate::lexer`] plus
//! the comment side-channel (for the `// audited:` / `// SAFETY:`
//! annotation grammar). Test code — items behind `#[cfg(test)]` /
//! `#[test]` attributes — is exempt from the panic-surface and layering
//! rules: tests panic on purpose. The unsafe-hygiene and lock-poisoning
//! rules apply everywhere, tests included.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{lex, Comment, Token, TokenKind};

/// The crates whose `src/` parses untrusted container bytes or wire input;
/// the panic-surface rule applies only to these (DESIGN.md §2 and §9).
pub const BOUNDARY_CRATES: &[&str] = &["bits", "codec", "k2tree", "baselines", "store", "server"];

/// Rule identifiers, as rendered in findings and accepted by the allowlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `unwrap`/`expect`/panicking macros/indexing in a boundary crate.
    PanicSurface,
    /// `.lock()/.read()/.write()` chained into `.unwrap()/.expect(` —
    /// code that should sit on `grepair_util::sync` instead.
    LockPoisoning,
    /// An `unsafe` keyword with no `// SAFETY:` justification.
    UnsafeHygiene,
    /// A `DESIGN.md §N` (or bare `§N`) reference to a missing heading, a
    /// dangling `DESIGN.md#…` slug link, or a missing `examples/*.rs` path.
    DocAnchors,
    /// `println!`/`eprintln!`/`std::process::exit` outside binary roots.
    Layering,
    /// The annotation grammar itself: an `// audited:` with no reason, or
    /// one that suppresses nothing; a malformed or unused allowlist entry.
    Annotation,
}

impl Rule {
    pub fn id(self) -> &'static str {
        match self {
            Rule::PanicSurface => "panic-surface",
            Rule::LockPoisoning => "lock-poisoning",
            Rule::UnsafeHygiene => "unsafe-hygiene",
            Rule::DocAnchors => "doc-anchors",
            Rule::Layering => "layering",
            Rule::Annotation => "annotation",
        }
    }

    pub fn from_id(id: &str) -> Option<Rule> {
        Some(match id {
            "panic-surface" => Rule::PanicSurface,
            "lock-poisoning" => Rule::LockPoisoning,
            "unsafe-hygiene" => Rule::UnsafeHygiene,
            "doc-anchors" => Rule::DocAnchors,
            "layering" => Rule::Layering,
            "annotation" => Rule::Annotation,
            _ => return None,
        })
    }
}

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    pub file: String,
    pub line: u32,
    pub rule: Rule,
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule.id(), self.message)
    }
}

/// How one file relates to the rule set — derived from its workspace path
/// by [`crate::workspace`], or constructed directly by the fixture tests.
#[derive(Debug, Clone)]
pub struct FileClass {
    /// Path as reported in findings (workspace-relative).
    pub rel_path: String,
    /// Inside one of [`BOUNDARY_CRATES`]? (panic-surface applies)
    pub boundary: bool,
    /// A binary root (`src/main.rs`, `src/bin/*`, or any file of a crate
    /// with no `src/lib.rs`)? (layering allows prints / exit)
    pub bin_root: bool,
}

/// The resolvable anchor targets parsed from `DESIGN.md`.
#[derive(Debug, Default, Clone)]
pub struct Anchors {
    /// Arabic section numbers with headings: "2", "6", "6.1", …
    pub sections: BTreeSet<String>,
    /// GitHub-style heading slugs: "6-wire-protocol-and-serving-topology".
    pub slugs: BTreeSet<String>,
}

impl Anchors {
    /// Parse the `§N`-numbered headings of a DESIGN.md text.
    pub fn from_design(text: &str) -> Anchors {
        let mut anchors = Anchors::default();
        for line in text.lines() {
            let trimmed = line.trim_start_matches('#');
            let hashes = line.len() - trimmed.len();
            if hashes == 0 || !line.starts_with('#') {
                continue;
            }
            let heading = trimmed.trim();
            if let Some(rest) = heading.strip_prefix('§') {
                let number: String = rest
                    .chars()
                    .take_while(|c| c.is_ascii_digit() || *c == '.')
                    .collect();
                if !number.is_empty() {
                    anchors.sections.insert(number.trim_end_matches('.').to_string());
                }
            }
            anchors.slugs.insert(slugify(heading));
        }
        anchors
    }
}

/// GitHub's heading→fragment convention, as used by the README links:
/// lowercase, alphanumerics kept, spaces hyphenated, everything else
/// (including `§`) dropped.
pub fn slugify(heading: &str) -> String {
    let mut slug = String::new();
    for c in heading.chars() {
        if c.is_ascii_alphanumeric() {
            slug.extend(c.to_lowercase());
        } else if c == ' ' || c == '-' {
            slug.push('-');
        }
    }
    slug
}

/// Per-line comment context derived from the lexer's comment list.
struct CommentMap {
    /// Line → concatenated comment text touching that line.
    by_line: BTreeMap<u32, String>,
    /// Lines that hold comments and no code tokens at all.
    comment_only: BTreeSet<u32>,
}

/// Doc comments (`///`, `//!`, `/**`, `/*!`) are rendered documentation:
/// prose *about* the annotation grammar, never an annotation itself.
fn is_doc_comment(text: &str) -> bool {
    (text.starts_with("///") && !text.starts_with("////"))
        || text.starts_with("//!")
        || (text.starts_with("/**") && !text.starts_with("/**/"))
        || text.starts_with("/*!")
}

impl CommentMap {
    fn build(comments: &[Comment], tokens: &[Token]) -> CommentMap {
        let mut by_line: BTreeMap<u32, String> = BTreeMap::new();
        for c in comments {
            if is_doc_comment(&c.text) {
                // Doc lines stay walkable as comment-only lines (below)
                // but carry no annotation tags.
                for line in c.line..=c.end_line {
                    by_line.entry(line).or_default();
                }
                continue;
            }
            for line in c.line..=c.end_line {
                by_line.entry(line).or_default().push_str(&c.text);
            }
        }
        let mut token_lines = BTreeSet::new();
        for t in tokens {
            for line in t.line..=t.end_line {
                token_lines.insert(line);
            }
        }
        let comment_only = by_line
            .keys()
            .filter(|line| !token_lines.contains(line))
            .copied()
            .collect();
        CommentMap { by_line, comment_only }
    }

    /// Does `line` carry (possibly trailing) comment text containing `tag`?
    fn line_has(&self, line: u32, tag: &str) -> bool {
        self.by_line.get(&line).is_some_and(|text| text.contains(tag))
    }

    /// Walk upward from `line - 1` over comment-only lines; the first of
    /// them containing `tag`, if any. This is how a multi-line `// SAFETY:`
    /// or `// audited:` block directly above its code qualifies.
    fn block_above_find(&self, line: u32, tag: &str) -> Option<u32> {
        let mut l = line.saturating_sub(1);
        while l > 0 && self.comment_only.contains(&l) {
            if self.line_has(l, tag) {
                return Some(l);
            }
            l -= 1;
        }
        None
    }

    fn block_above_has(&self, line: u32, tag: &str) -> bool {
        self.block_above_find(line, tag).is_some()
    }
}

/// Keywords that can legally precede a `[` that is *not* an index
/// expression (array/slice types, mostly).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "as", "box", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "fn",
    "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "self", "static", "struct", "trait", "type", "unsafe", "use", "where", "while",
    "yield",
];

/// Mark which token indices sit inside test-gated items (`#[test]`,
/// `#[cfg(test)]`, `#[cfg(all(test, …))]` — attribute first-ident `test`,
/// or `cfg` whose argument tokens include `test`).
fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].text != "#" || tokens.get(i + 1).map(|t| t.text.as_str()) != Some("[") {
            i += 1;
            continue;
        }
        // Scan the attribute `#[ … ]`, collecting its idents.
        let mut j = i + 2;
        let mut depth = 1usize;
        let mut idents: Vec<&str> = Vec::new();
        while j < tokens.len() && depth > 0 {
            match tokens[j].text.as_str() {
                "[" => depth += 1,
                "]" => depth -= 1,
                _ => {
                    if tokens[j].kind == TokenKind::Ident {
                        idents.push(&tokens[j].text);
                    }
                }
            }
            j += 1;
        }
        let is_test_attr = match idents.first() {
            Some(&"test") => true,
            Some(&"cfg") => idents.contains(&"test"),
            _ => false,
        };
        if !is_test_attr {
            i = j;
            continue;
        }
        // Mark the attribute, any further attributes, and the item they
        // decorate — up to the matching `}` of its body, or a `;` at
        // bracket depth 0 for bodiless items (`mod tests;`, use decls).
        let start = i;
        let mut k = j;
        loop {
            // Further outer attributes on the same item.
            if tokens.get(k).map(|t| t.text.as_str()) == Some("#")
                && tokens.get(k + 1).map(|t| t.text.as_str()) == Some("[")
            {
                let mut depth = 1usize;
                k += 2;
                while k < tokens.len() && depth > 0 {
                    match tokens[k].text.as_str() {
                        "[" => depth += 1,
                        "]" => depth -= 1,
                        _ => {}
                    }
                    k += 1;
                }
                continue;
            }
            break;
        }
        let mut round = 0usize; // () and [] nesting inside the signature
        while k < tokens.len() {
            match tokens[k].text.as_str() {
                "(" | "[" => round += 1,
                ")" | "]" => round = round.saturating_sub(1),
                ";" if round == 0 => {
                    k += 1;
                    break;
                }
                "{" => {
                    let mut braces = 1usize;
                    k += 1;
                    while k < tokens.len() && braces > 0 {
                        match tokens[k].text.as_str() {
                            "{" => braces += 1,
                            "}" => braces -= 1,
                            _ => {}
                        }
                        k += 1;
                    }
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        for slot in mask.iter_mut().take(k).skip(start) {
            *slot = true;
        }
        i = k;
    }
    mask
}

/// All state needed to check one file.
struct FileCheck<'a> {
    class: &'a FileClass,
    tokens: Vec<Token>,
    in_test: Vec<bool>,
    comments: CommentMap,
    /// Line numbers of `// audited:` annotations that suppressed a finding.
    used_audits: BTreeSet<u32>,
    findings: Vec<Finding>,
}

impl FileCheck<'_> {
    fn report(&mut self, line: u32, rule: Rule, message: String) {
        self.findings.push(Finding {
            file: self.class.rel_path.clone(),
            line,
            rule,
            message,
        });
    }

    fn text(&self, i: usize) -> &str {
        self.tokens.get(i).map_or("", |t| t.text.as_str())
    }

    fn is_ident(&self, i: usize, name: &str) -> bool {
        self.tokens
            .get(i)
            .is_some_and(|t| t.kind == TokenKind::Ident && t.text == name)
    }

    /// Is the finding at `line` excused by an `// audited: reason` on the
    /// same line or in the comment block directly above? Records the use.
    fn audited(&mut self, line: u32) -> bool {
        if line > 0 && self.comments.line_has(line, "audited:") {
            self.used_audits.insert(line);
            return true;
        }
        if let Some(l) = self.comments.block_above_find(line, "audited:") {
            self.used_audits.insert(l);
            return true;
        }
        false
    }

    /// Report `rule` at `line` unless an audit annotation excuses it.
    fn report_unless_audited(&mut self, line: u32, rule: Rule, message: String) {
        if !self.audited(line) {
            self.report(line, rule, message);
        }
    }

    // --- rule 1: panic-surface -------------------------------------------

    fn panic_surface(&mut self) {
        if !self.class.boundary {
            return;
        }
        for i in 0..self.tokens.len() {
            if self.in_test[i] {
                continue;
            }
            let line = self.tokens[i].line;
            // `.unwrap()` / `.expect(`
            if self.text(i) == "."
                && (self.is_ident(i + 1, "unwrap") || self.is_ident(i + 1, "expect"))
                && self.text(i + 2) == "("
            {
                let line = self.tokens[i + 1].line;
                let what = self.tokens[i + 1].text.clone();
                self.report_unless_audited(
                    line,
                    Rule::PanicSurface,
                    format!(".{what}() in untrusted-input crate (annotate `// audited: <reason>` or return an error)"),
                );
                continue;
            }
            // `panic!` / `unreachable!` / `todo!` / `unimplemented!`
            if self.tokens[i].kind == TokenKind::Ident
                && matches!(self.text(i), "panic" | "unreachable" | "todo" | "unimplemented")
                && self.text(i + 1) == "!"
            {
                let what = self.tokens[i].text.clone();
                self.report_unless_audited(
                    line,
                    Rule::PanicSurface,
                    format!("{what}! in untrusted-input crate (annotate `// audited: <reason>` or return an error)"),
                );
                continue;
            }
            // Direct indexing `expr[…]`: a `[` whose preceding token ends
            // an expression (non-keyword ident, `)`, `]`, or `?`).
            if self.text(i) == "[" && i > 0 {
                let prev = &self.tokens[i - 1];
                let indexes = match prev.kind {
                    TokenKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text.as_str()),
                    TokenKind::Punct => matches!(prev.text.as_str(), ")" | "]" | "?"),
                    _ => false,
                };
                if indexes {
                    let target = if prev.kind == TokenKind::Ident {
                        format!("`{}[…]`", prev.text)
                    } else {
                        "`[…]`".to_string()
                    };
                    self.report_unless_audited(
                        line,
                        Rule::PanicSurface,
                        format!("direct slice indexing {target} in untrusted-input crate (annotate `// audited: <reason>` or use .get())"),
                    );
                }
            }
        }
    }

    // --- rule 2: lock-poisoning ------------------------------------------

    fn lock_poisoning(&mut self) {
        for i in 0..self.tokens.len() {
            if self.text(i) == "."
                && (self.is_ident(i + 1, "lock")
                    || self.is_ident(i + 1, "read")
                    || self.is_ident(i + 1, "write"))
                && self.text(i + 2) == "("
                && self.text(i + 3) == ")"
                && self.text(i + 4) == "."
                && (self.is_ident(i + 5, "unwrap") || self.is_ident(i + 5, "expect"))
                && self.text(i + 6) == "("
            {
                let line = self.tokens[i + 5].line;
                let acquire = self.tokens[i + 1].text.clone();
                let handle = self.tokens[i + 5].text.clone();
                self.report_unless_audited(
                    line,
                    Rule::LockPoisoning,
                    format!(".{acquire}().{handle}(…) propagates lock poisoning — use grepair_util::sync locks"),
                );
            }
        }
    }

    // --- rule 3: unsafe-hygiene ------------------------------------------

    fn unsafe_hygiene(&mut self) {
        for i in 0..self.tokens.len() {
            if !self.is_ident(i, "unsafe") {
                continue;
            }
            let line = self.tokens[i].line;
            if self.comments.line_has(line, "SAFETY:")
                || self.comments.block_above_has(line, "SAFETY:")
            {
                continue;
            }
            self.report(
                line,
                Rule::UnsafeHygiene,
                "unsafe without a `// SAFETY:` justification on the preceding lines".to_string(),
            );
        }
    }

    // --- rule 5: layering -------------------------------------------------

    fn layering(&mut self) {
        if self.class.bin_root {
            return;
        }
        for i in 0..self.tokens.len() {
            if self.in_test[i] {
                continue;
            }
            let line = self.tokens[i].line;
            if self.tokens[i].kind == TokenKind::Ident
                && matches!(self.text(i), "println" | "eprintln" | "print" | "eprint")
                && self.text(i + 1) == "!"
            {
                let what = self.tokens[i].text.clone();
                self.report_unless_audited(
                    line,
                    Rule::Layering,
                    format!("{what}! outside a binary root (libraries return data, binaries print)"),
                );
            }
            if self.is_ident(i, "process")
                && self.text(i + 1) == ":"
                && self.text(i + 2) == ":"
                && self.is_ident(i + 3, "exit")
            {
                self.report_unless_audited(
                    line,
                    Rule::Layering,
                    "process::exit outside a binary root".to_string(),
                );
            }
        }
    }

    // --- annotation hygiene ----------------------------------------------

    fn annotation_hygiene(&mut self, comments: &[Comment]) {
        // Line ranges covered by test items (whole spans, so comment-only
        // lines inside a test body count too): audits inside tests are
        // neither required nor policed.
        let mut test_lines = BTreeSet::new();
        let mut run: Option<(u32, u32)> = None;
        for (t, &in_test) in self.tokens.iter().zip(&self.in_test) {
            if in_test {
                run = Some(match run {
                    None => (t.line, t.end_line),
                    Some((start, _)) => (start, t.end_line),
                });
            } else if let Some((start, end)) = run.take() {
                test_lines.extend(start..=end);
            }
        }
        if let Some((start, end)) = run {
            test_lines.extend(start..=end);
        }
        for c in comments {
            if is_doc_comment(&c.text) {
                continue;
            }
            let Some(at) = c.text.find("audited:") else { continue };
            if test_lines.contains(&c.line) {
                continue;
            }
            let reason = c.text[at + "audited:".len()..].trim();
            if reason.is_empty() {
                self.report(
                    c.line,
                    Rule::Annotation,
                    "`audited:` annotation with an empty reason".to_string(),
                );
            } else if !(c.line..=c.end_line.saturating_add(1))
                .any(|line| self.used_audits.contains(&line))
            {
                self.report(
                    c.line,
                    Rule::Annotation,
                    "`audited:` annotation that suppresses nothing — remove it".to_string(),
                );
            }
        }
    }
}

/// Scan the raw text of any file (source or markdown) for doc anchors:
/// `DESIGN.md §N` / bare `§N` references, `DESIGN.md#…` slug links, and
/// `examples/*.rs` path mentions. `examples_root` is where path mentions
/// resolve; pass `None` to skip the existence check (fixture tests).
pub fn check_doc_anchors(
    rel_path: &str,
    text: &str,
    anchors: &Anchors,
    examples_root: Option<&std::path::Path>,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line_no = idx as u32 + 1;
        // `§N` and `§N.M` with Arabic digits — references into DESIGN.md.
        // (Paper sections are cited with Roman numerals, so they never
        // match.)
        let mut rest = line;
        while let Some(at) = rest.find('§') {
            rest = &rest[at + '§'.len_utf8()..];
            let number: String = rest
                .chars()
                .take_while(|c| c.is_ascii_digit() || *c == '.')
                .collect();
            let number = number.trim_end_matches('.').to_string();
            if !number.is_empty() && !anchors.sections.contains(&number) {
                findings.push(Finding {
                    file: rel_path.to_string(),
                    line: line_no,
                    rule: Rule::DocAnchors,
                    message: format!("reference to DESIGN.md §{number}, which has no such heading"),
                });
            }
        }
        // Markdown links into DESIGN.md headings by slug.
        let mut rest = line;
        while let Some(at) = rest.find("DESIGN.md#") {
            rest = &rest[at + "DESIGN.md#".len()..];
            let slug: String = rest
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '-' || *c == '_')
                .collect();
            if !slug.is_empty() && !anchors.slugs.contains(&slug) {
                findings.push(Finding {
                    file: rel_path.to_string(),
                    line: line_no,
                    rule: Rule::DocAnchors,
                    message: format!("link DESIGN.md#{slug} matches no DESIGN.md heading"),
                });
            }
        }
        // `examples/<name>.rs` path mentions.
        let Some(root) = examples_root else { continue };
        let mut rest = line;
        while let Some(at) = rest.find("examples/") {
            let tail = &rest[at..];
            let path: String = tail
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || matches!(c, '/' | '_' | '-' | '.'))
                .collect();
            rest = &rest[at + "examples/".len()..];
            if path.ends_with(".rs") && !root.join(&path).is_file() {
                findings.push(Finding {
                    file: rel_path.to_string(),
                    line: line_no,
                    rule: Rule::DocAnchors,
                    message: format!("reference to {path}, which does not exist"),
                });
            }
        }
    }
    findings
}

/// Run every source rule over one Rust file. `anchors` feeds the
/// doc-anchors rule, which also runs here (source comments cite DESIGN.md).
pub fn check_source(
    class: &FileClass,
    source: &str,
    anchors: &Anchors,
    examples_root: Option<&std::path::Path>,
) -> Vec<Finding> {
    let lexed = lex(source);
    let in_test = test_mask(&lexed.tokens);
    let comments = CommentMap::build(&lexed.comments, &lexed.tokens);
    let mut check = FileCheck {
        class,
        in_test,
        comments,
        tokens: lexed.tokens,
        used_audits: BTreeSet::new(),
        findings: Vec::new(),
    };
    check.panic_surface();
    check.lock_poisoning();
    check.unsafe_hygiene();
    check.layering();
    check.annotation_hygiene(&lexed.comments);
    let mut findings = check.findings;
    findings.extend(check_doc_anchors(&class.rel_path, source, anchors, examples_root));
    findings.sort();
    findings
}
