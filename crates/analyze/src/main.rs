//! `grepair-analyze` — enforce the zero-panic boundary at the source
//! level (DESIGN.md §9).
//!
//! ```text
//! grepair-analyze [--ci] [--json] [--root PATH] [--allowlist PATH]
//! grepair-analyze --self-test
//! ```
//!
//! Exit status: 0 on a clean workspace (always, without `--ci`); with
//! `--ci`, 1 when any finding survives the allowlist; 1 on a self-test
//! mismatch; 2 on usage or layout errors.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use grepair_analyze::workspace::{inventory, ALLOWLIST_PATH};
use grepair_analyze::{analyze_workspace, find_root, selftest, to_json, Allowlist};

struct Options {
    ci: bool,
    json: bool,
    self_test: bool,
    root: Option<PathBuf>,
    allowlist: Option<PathBuf>,
}

const USAGE: &str = "usage: grepair-analyze [--ci] [--json] [--root PATH] [--allowlist PATH] [--self-test]";

fn parse_args() -> Result<Options, String> {
    let mut opts = Options { ci: false, json: false, self_test: false, root: None, allowlist: None };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--ci" => opts.ci = true,
            "--json" => opts.json = true,
            "--self-test" => opts.self_test = true,
            "--root" => {
                opts.root = Some(PathBuf::from(
                    args.next().ok_or("--root needs a path")?,
                ));
            }
            "--allowlist" => {
                opts.allowlist = Some(PathBuf::from(
                    args.next().ok_or("--allowlist needs a path")?,
                ));
            }
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    if opts.self_test {
        return match selftest::run() {
            Ok(summary) => {
                println!("{summary}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("self-test FAILED: {e}");
                ExitCode::from(1)
            }
        };
    }

    let root = match opts.root.or_else(|| {
        std::env::current_dir().ok().and_then(|cwd| find_root(&cwd))
    }) {
        Some(root) => root,
        None => {
            eprintln!("no workspace root found (need Cargo.toml + DESIGN.md; use --root)");
            return ExitCode::from(2);
        }
    };

    let allow_path = opts.allowlist.unwrap_or_else(|| root.join(ALLOWLIST_PATH));
    let allow = match std::fs::read_to_string(&allow_path) {
        Ok(text) => Allowlist::parse(ALLOWLIST_PATH, &text),
        Err(_) => Allowlist::default(), // no allowlist file: nothing allowed
    };

    let findings = match analyze_workspace(&root, &allow) {
        Ok(findings) => findings,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    if opts.json {
        println!("{}", to_json(&findings));
    } else {
        for finding in &findings {
            println!("{finding}");
        }
        if findings.is_empty() {
            println!("grepair-analyze: zero findings ({})", inventory(&root));
        } else {
            println!("grepair-analyze: {} finding(s)", findings.len());
        }
    }

    if opts.ci && !findings.is_empty() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
