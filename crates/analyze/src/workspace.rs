//! Workspace walking: find every source file the rules apply to, classify
//! it, and aggregate findings (DESIGN.md §9).
//!
//! Scope:
//!
//! * `crates/*/src/**/*.rs` and the facade `src/**/*.rs` — all rules.
//! * `crates/*/{tests,benches}/**/*.rs` and `examples/*.rs` — doc-anchors
//!   only (tests panic on purpose; their DESIGN.md citations still must
//!   resolve).
//! * `README.md` and `DESIGN.md` — doc-anchors (section references, slug
//!   links, example paths).
//! * `vendor/` is out of scope: those are offline stand-ins for crates.io
//!   dependencies, not this workspace's code.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use crate::allow::Allowlist;
use crate::rules::{
    check_doc_anchors, check_source, Anchors, FileClass, Finding, BOUNDARY_CRATES,
};

/// Default allowlist location, relative to the workspace root.
pub const ALLOWLIST_PATH: &str = "analyze.allow";

fn read(path: &Path) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))
}

/// Recursively collect `.rs` files under `dir` (sorted for determinism).
fn rs_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else { return out };
    let mut entries: Vec<_> = entries.filter_map(Result::ok).map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            out.extend(rs_files(&path));
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out
}

fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Analyze the workspace rooted at `root` with `allow` applied. Returns
/// the surviving findings, sorted. Errors only on unreadable layout
/// prerequisites (no `DESIGN.md`, no `crates/`).
pub fn analyze_workspace(root: &Path, allow: &Allowlist) -> Result<Vec<Finding>, String> {
    let design = read(&root.join("DESIGN.md"))?;
    let anchors = Anchors::from_design(&design);
    let mut findings = Vec::new();

    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<_> = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    for crate_dir in &crate_dirs {
        let name = crate_dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let src = crate_dir.join("src");
        let has_lib = src.join("lib.rs").is_file();
        let boundary = BOUNDARY_CRATES.contains(&name.as_str());
        for path in rs_files(&src) {
            let rel_path = rel(root, &path);
            let bin_root = !has_lib
                || rel_path.ends_with("/src/main.rs")
                || rel_path.contains("/src/bin/");
            let class = FileClass { rel_path, boundary, bin_root };
            findings.extend(check_source(&class, &read(&path)?, &anchors, Some(root)));
        }
        // Doc-anchors-only surfaces of the crate.
        for sub in ["tests", "benches", "examples"] {
            for path in rs_files(&crate_dir.join(sub)) {
                let rel_path = rel(root, &path);
                findings.extend(check_doc_anchors(&rel_path, &read(&path)?, &anchors, Some(root)));
            }
        }
    }

    // The facade crate at the root (library-only, not a boundary crate).
    for path in rs_files(&root.join("src")) {
        let rel_path = rel(root, &path);
        let class = FileClass { rel_path, boundary: false, bin_root: false };
        findings.extend(check_source(&class, &read(&path)?, &anchors, Some(root)));
    }
    for path in rs_files(&root.join("examples")) {
        let rel_path = rel(root, &path);
        findings.extend(check_doc_anchors(&rel_path, &read(&path)?, &anchors, Some(root)));
    }

    // Prose: README's links and section citations, and DESIGN.md's own
    // internal cross-references.
    for name in ["README.md", "DESIGN.md"] {
        let path = root.join(name);
        if path.is_file() {
            findings.extend(check_doc_anchors(name, &read(&path)?, &anchors, Some(root)));
        }
    }

    Ok(allow.apply(ALLOWLIST_PATH, findings))
}

/// Walk upward from `start` to the first directory holding both a
/// `Cargo.toml` and a `DESIGN.md` — the workspace root.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() && d.join("DESIGN.md").is_file() {
            return Some(d);
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// A quick inventory line for `--ci` output: how many files each rule
/// family scanned, so "0 findings" is visibly not "0 files".
pub fn inventory(root: &Path) -> String {
    let mut src_files = 0usize;
    let mut doc_files = 0usize;
    let mut crates = BTreeSet::new();
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        for crate_dir in entries.filter_map(Result::ok).map(|e| e.path()).filter(|p| p.is_dir()) {
            if let Some(name) = crate_dir.file_name() {
                crates.insert(name.to_string_lossy().into_owned());
            }
            src_files += rs_files(&crate_dir.join("src")).len();
            for sub in ["tests", "benches", "examples"] {
                doc_files += rs_files(&crate_dir.join(sub)).len();
            }
        }
    }
    src_files += rs_files(&root.join("src")).len();
    doc_files += rs_files(&root.join("examples")).len() + 2; // README, DESIGN
    format!(
        "scanned {src_files} src files across {} crates (+facade), {doc_files} doc-anchor surfaces",
        crates.len()
    )
}
