//! `grepair-analyze` — the workspace's static-analysis pass (DESIGN.md §9).
//!
//! The serving stack promises a zero-panic boundary over untrusted
//! container bytes (DESIGN.md §2). CI enforces that *dynamically* with
//! hostile corpora; this crate enforces it *statically*, before a panic
//! path can ship: a lightweight Rust lexer (no `syn` in the offline
//! dependency set — see [`lexer`]) feeds five rule families (see
//! [`rules`]) over every workspace `src/` file:
//!
//! 1. **panic-surface** — `unwrap`/`expect`/panicking macros/direct
//!    indexing in the untrusted-input crates, unless `// audited:`.
//! 2. **lock-poisoning** — `.lock()/.read()/.write()` chained into
//!    `.unwrap()/.expect(`; the fix is the poison-transparent wrappers
//!    in `grepair_util::sync` (cited as prose; this crate does not link
//!    the util crate).
//! 3. **unsafe-hygiene** — every `unsafe` carries a `// SAFETY:` comment.
//! 4. **doc-anchors** — every `DESIGN.md §N` reference, `DESIGN.md#…`
//!    slug link, and `examples/*.rs` mention resolves.
//! 5. **layering** — `println!`/`eprintln!`/`process::exit` only in
//!    binary roots.
//!
//! The binary (`cargo run -p grepair-analyze -- --ci`) exits non-zero on
//! findings; `--json` emits machine-readable output; `--self-test` runs
//! the embedded fixture corpus (known-bad snippets that must each fire
//! their rule exactly once, with an annotated twin that must not).

#![forbid(unsafe_code)]

pub mod allow;
pub mod lexer;
pub mod rules;
pub mod selftest;
pub mod workspace;

pub use allow::Allowlist;
pub use rules::{check_source, Anchors, FileClass, Finding, Rule};
pub use workspace::{analyze_workspace, find_root};

/// Render findings as a JSON array (no serde in the offline set).
pub fn to_json(findings: &[Finding]) -> String {
    fn escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            escape(&f.file),
            f.line,
            f.rule.id(),
            escape(&f.message)
        ));
    }
    out.push_str(if findings.is_empty() { "]" } else { "\n]" });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_shapes() {
        let findings = vec![Finding {
            file: "a \"b\".rs".into(),
            line: 3,
            rule: Rule::PanicSurface,
            message: "tab\there".into(),
        }];
        let json = to_json(&findings);
        assert!(json.contains(r#""file": "a \"b\".rs""#), "{json}");
        assert!(json.contains(r#""line": 3"#));
        assert!(json.contains(r#""rule": "panic-surface""#));
        assert!(json.contains(r#"tab\there"#));
        assert_eq!(to_json(&[]), "[]");
    }
}
