//! The fixture corpus under `cargo test`: every known-bad snippet fires
//! its rule exactly once, every annotated twin stays silent, and the
//! finding lands on the right line (DESIGN.md §9).

use grepair_analyze::rules::{check_source, FileClass, Rule};
use grepair_analyze::selftest::{self, check_fixture, fixture_anchors, FIXTURES};

#[test]
fn corpus_passes_the_embedded_self_test() {
    selftest::run().expect("the --self-test corpus must be green");
}

fn findings_for(name: &str) -> Vec<grepair_analyze::Finding> {
    let fixture = FIXTURES
        .iter()
        .find(|f| f.name == name)
        .unwrap_or_else(|| panic!("no fixture named {name}"));
    check_fixture(fixture)
}

/// Line of the unaudited bad snippet in each fixture, asserted exactly so
/// a drifting lexer cannot silently re-anchor findings.
#[test]
fn findings_anchor_to_the_bad_line() {
    for (name, line) in [
        ("panic_unwrap.rs", 5),
        ("panic_expect.rs", 6),
        ("panic_macro.rs", 7),
        ("panic_index.rs", 9),
        ("lock_poison.rs", 8),
        ("unsafe_hygiene.rs", 6),
        ("doc_anchor.rs", 5),
        ("layering.rs", 6),
    ] {
        let findings = findings_for(name);
        assert_eq!(findings.len(), 1, "{name}: {findings:?}");
        assert_eq!(findings[0].line, line, "{name}: {findings:?}");
    }
}

#[test]
fn panic_surface_only_applies_to_boundary_crates() {
    let fixture = FIXTURES.iter().find(|f| f.name == "panic_unwrap.rs").unwrap();
    let class = FileClass {
        rel_path: "crates/hypergraph/src/free.rs".into(),
        boundary: false,
        bin_root: false,
    };
    let findings = check_source(&class, fixture.source, &fixture_anchors(), None);
    // The `.unwrap()` is free outside the boundary — but the audited twin's
    // annotation now suppresses nothing, which the annotation rule reports.
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, Rule::Annotation);
    assert!(findings[0].message.contains("suppresses nothing"), "{findings:?}");
}

#[test]
fn layering_is_free_in_binary_roots() {
    let fixture = FIXTURES.iter().find(|f| f.name == "layering.rs").unwrap();
    let class = FileClass {
        rel_path: "crates/cli/src/main.rs".into(),
        boundary: false,
        bin_root: true,
    };
    let findings = check_source(&class, fixture.source, &fixture_anchors(), None);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, Rule::Annotation, "twin audit now suppresses nothing");
}

#[test]
fn empty_audit_reasons_are_rejected() {
    let class = FileClass {
        rel_path: "crates/store/src/x.rs".into(),
        boundary: true,
        bin_root: false,
    };
    let src = "pub fn f(v: Option<u32>) -> u32 {\n    // audited:\n    v.unwrap()\n}\n";
    let findings = check_source(&class, src, &fixture_anchors(), None);
    // The empty reason is reported; the unwrap itself stays suppressed
    // (the annotation is present, just unacceptable) so the fix is one
    // edit, not two findings on one line.
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, Rule::Annotation);
    assert!(findings[0].message.contains("empty reason"), "{findings:?}");
}

#[test]
fn audit_block_may_span_several_comment_lines() {
    let class = FileClass {
        rel_path: "crates/store/src/x.rs".into(),
        boundary: true,
        bin_root: false,
    };
    let src = "pub fn f(v: Option<u32>) -> u32 {\n    // audited: the caller checked is_some\n    // across a long-winded second line.\n    v.unwrap()\n}\n";
    let findings = check_source(&class, src, &fixture_anchors(), None);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn safety_block_may_sit_several_comment_lines_above() {
    let class = FileClass {
        rel_path: "crates/server/src/x.rs".into(),
        boundary: false,
        bin_root: false,
    };
    let src = "pub fn f(p: *const u32) -> u32 {\n    // SAFETY: the pointer is valid because\n    // the caller pinky-promised, at length,\n    // across several lines.\n    unsafe { *p }\n}\n";
    let findings = check_source(&class, src, &fixture_anchors(), None);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn unsafe_fn_items_need_safety_too() {
    let class = FileClass {
        rel_path: "crates/server/src/x.rs".into(),
        boundary: false,
        bin_root: false,
    };
    let src = "pub unsafe fn f() {}\n";
    let findings = check_source(&class, src, &fixture_anchors(), None);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, Rule::UnsafeHygiene);
}

#[test]
fn doc_anchor_slug_links_resolve_against_headings() {
    let anchors = grepair_analyze::Anchors::from_design(
        "# Design notes\n\n## §6 Wire protocol and serving topology\n",
    );
    let ok = "See [DESIGN.md §6](DESIGN.md#6-wire-protocol-and-serving-topology).";
    let bad = "See [DESIGN.md §6](DESIGN.md#6-wire-protocol-gone).";
    assert!(grepair_analyze::rules::check_doc_anchors("README.md", ok, &anchors, None).is_empty());
    let findings = grepair_analyze::rules::check_doc_anchors("README.md", bad, &anchors, None);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, Rule::DocAnchors);
}

#[test]
fn subsection_references_resolve_independently() {
    let anchors =
        grepair_analyze::Anchors::from_design("## §6 Wire\n\n### §6.1 Framing\n### §6.2 Query\n");
    let text = "// §6.1 and §6.2 exist; §6.3 does not; §6 does.";
    let findings = grepair_analyze::rules::check_doc_anchors("x.rs", text, &anchors, None);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(findings[0].message.contains("§6.3"), "{findings:?}");
}
