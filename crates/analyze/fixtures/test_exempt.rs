// Fixture: zero findings expected. Panic surface, prints, and audits in
// test-gated code are exempt — tests panic on purpose.

pub fn covered(v: Option<u32>) -> u32 {
    v.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwraps_and_prints_freely() {
        let v: Option<u32> = Some(1);
        // audited: never policed inside tests
        assert_eq!(v.unwrap(), covered(v));
        println!("tests may print");
        let s = [1, 2, 3];
        assert_eq!(s[0], 1);
    }
}

#[cfg(all(test, unix))]
fn helper() {
    let s = vec![1];
    assert_eq!(s[0], 1);
}
