// Fixture: doc-anchors must fire exactly once — on the dangling section
// reference below — and not on the resolvable twin or the Roman-numeral
// paper citation.

/// Checked against the zero-panic policy of DESIGN.md §99 (dangling!).
pub fn bad() {}

/// Checked against the zero-panic policy of DESIGN.md §2, which the
/// paper's §III-C2 codec feeds (Roman numerals are paper sections, not
/// DESIGN anchors).
pub fn good() {}
