// Fixture: panic-surface must fire exactly once — on the unaudited
// `v[i]` — and not on the audited twin, the array type/literal, the
// `&mut [u8]` parameter, or the attribute brackets.

#[derive(Debug)]
pub struct Wrap(pub Vec<u32>);

pub fn bad(v: &[u32], i: usize) -> u32 {
    v[i]
}

pub fn good(v: &[u32], _buf: &mut [u8]) -> u32 {
    let table: [u32; 4] = [0, 1, 2, 3];
    let first = table.first().copied().unwrap_or(0);
    // audited: fixture twin — index bounded by the modulo above
    v[first as usize % v.len().max(1)]
}
