// Fixture: panic-surface must fire exactly once — on the `unreachable!`
// below — and not on the audited `panic!` twin, nor inside the raw string.

pub fn bad(x: u32) -> u32 {
    match x {
        0 => 1,
        _ => unreachable!(),
    }
}

pub fn good(x: u32) -> &'static str {
    if x > 1_000_000 {
        // audited: fixture twin — deliberate re-raise
        panic!("too big");
    }
    r#"panic!("inside a raw string is fine")"#
}
