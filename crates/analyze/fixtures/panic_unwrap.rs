// Fixture: panic-surface must fire exactly once — on the bare `.unwrap()`
// below — and not on the audited twin.

pub fn bad(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn good(v: Option<u32>) -> u32 {
    // audited: fixture twin — caller guarantees Some
    v.unwrap()
}
