// Fixture: lock-poisoning must fire exactly once — on the
// `.lock().unwrap()` — and not on the audited `.read().expect(` twin,
// nor on the wrapper idiom where `.lock()` returns the guard directly.

use std::sync::{Mutex, RwLock};

pub fn bad(m: &Mutex<u32>) -> u32 {
    *m.lock().unwrap()
}

pub fn good(l: &RwLock<u32>) -> u32 {
    // audited: fixture twin — poisoning is fatal by design here
    *l.read().expect("poisoned")
}

pub fn wrapper_idiom(m: &grepair_util::sync::Mutex<u32>) -> u32 {
    *m.lock()
}
