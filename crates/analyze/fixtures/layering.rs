// Fixture: layering must fire exactly once — on the bare `println!` in
// library position — and not on the audited operational warning or the
// `process::exit` mention in this comment.

pub fn bad(x: u32) {
    println!("library code printing {x}");
}

pub fn good(x: u32) {
    // audited: fixture twin — operational warning, stderr is the contract
    eprintln!("degraded: {x}");
}
