// Fixture: panic-surface must fire exactly once — on the bare `.expect(`
// below — and not on the audited twin, nor on the string literal or the
// comment mentioning .expect("decoy").

pub fn bad(v: Option<u32>) -> u32 {
    v.expect("boom")
}

pub fn good(v: Option<u32>) -> (u32, &'static str) {
    let decoy = "call .expect(\"decoy\") here";
    // audited: fixture twin — invariant established by the constructor
    (v.expect("invariant"), decoy)
}
