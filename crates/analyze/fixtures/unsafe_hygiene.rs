// Fixture: unsafe-hygiene must fire exactly once — on the unannotated
// `unsafe` block — and not on the twin whose `// SAFETY:` block sits
// directly above it.

pub fn bad(p: *const u32) -> u32 {
    unsafe { *p }
}

pub fn good(v: &[u32]) -> u32 {
    // SAFETY: index 0 is in bounds — the caller-visible contract of this
    // fixture requires a non-empty slice, asserted above in real code.
    unsafe { *v.get_unchecked(0) }
}
