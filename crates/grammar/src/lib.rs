//! Straight-line hyperedge replacement grammars (SL-HR grammars, §II).
//!
//! An SL-HR grammar is `(N, P, S)`: a ranked nonterminal alphabet, exactly
//! one rule per nonterminal with acyclic references (straight-line), and a
//! start graph. Such a grammar derives exactly one hypergraph up to
//! isomorphism; with the paper's deterministic node-ID assignment (start
//! nodes first, then the nonterminal edges in order, depth-first) it derives
//! exactly one hypergraph, `val(G)` — implemented by [`Grammar::derive`].
//!
//! The crate also provides the grammar-level operations the compressor and
//! the query engine need: validation, bottom-up ≤NT order, height, the
//! paper's size measures |G|, |G|V, |G|E (start graph included — this is the
//! accounting under which the Fig. 6 example differs from its derived graph
//! by exactly con(A) = 3), reference counts, per-nonterminal derived-size
//! statistics, rule inlining ([`apply_rule`]), and the pruning arithmetic
//! `handle`/`con` of §III-A3.

#![forbid(unsafe_code)]

pub mod derive;
pub mod grammar;

pub use derive::{apply_rule, InlineResult};
pub use grammar::Grammar;
