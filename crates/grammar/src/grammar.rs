//! The [`Grammar`] type: rules, validation, orders, and size accounting.

use grepair_hypergraph::{EdgeLabel, Hypergraph};

/// A straight-line hyperedge replacement grammar.
///
/// Nonterminal `i` is [`EdgeLabel::Nonterminal`]`(i)` and its unique
/// right-hand side is `rules[i]`; the rank of the nonterminal is the rank
/// (external-node count) of that right-hand side.
#[derive(Debug, Clone, Default)]
pub struct Grammar {
    /// The start graph S.
    pub start: Hypergraph,
    /// `rules[i]` = rhs of nonterminal `i`.
    rules: Vec<Hypergraph>,
    /// Size of the terminal alphabet Σ (labels `0..num_terminals`).
    num_terminals: u32,
}

impl Grammar {
    /// Grammar with start graph `start` over `num_terminals` terminal labels
    /// and no rules (it derives `start` itself).
    pub fn new(start: Hypergraph, num_terminals: u32) -> Self {
        Self { start, rules: Vec::new(), num_terminals }
    }

    /// Add a rule; returns the new nonterminal's index.
    pub fn add_rule(&mut self, rhs: Hypergraph) -> u32 {
        self.rules.push(rhs);
        (self.rules.len() - 1) as u32
    }

    /// Right-hand side of nonterminal `nt`.
    pub fn rule(&self, nt: u32) -> &Hypergraph {
        &self.rules[nt as usize]
    }

    /// Mutable right-hand side of nonterminal `nt`.
    pub fn rule_mut(&mut self, nt: u32) -> &mut Hypergraph {
        &mut self.rules[nt as usize]
    }

    /// All right-hand sides.
    pub fn rules(&self) -> &[Hypergraph] {
        &self.rules
    }

    /// Number of nonterminals.
    pub fn num_nonterminals(&self) -> usize {
        self.rules.len()
    }

    /// Terminal alphabet size.
    pub fn num_terminals(&self) -> u32 {
        self.num_terminals
    }

    /// Set the terminal alphabet size (used when virtual labels are stripped).
    pub fn set_num_terminals(&mut self, n: u32) {
        self.num_terminals = n;
    }

    /// `rank(A)` — the rank of nonterminal `nt`.
    pub fn nt_rank(&self, nt: u32) -> usize {
        self.rules[nt as usize].rank()
    }

    // ------------------------------------------------------------------
    // Sizes (§II): |G| = |S| + Σ_rules |rhs| and likewise for V/E parts.
    // ------------------------------------------------------------------

    /// `|G|V`.
    pub fn node_size(&self) -> usize {
        self.start.node_size() + self.rules.iter().map(Hypergraph::node_size).sum::<usize>()
    }

    /// `|G|E`.
    pub fn edge_size(&self) -> usize {
        self.start.edge_size() + self.rules.iter().map(Hypergraph::edge_size).sum::<usize>()
    }

    /// `|G| = |G|V + |G|E`.
    pub fn size(&self) -> usize {
        self.node_size() + self.edge_size()
    }

    /// `|handle(A)|` for a nonterminal of rank `rank` (§III-A3): a minimal
    /// graph holding one nonterminal edge — `rank` nodes plus the edge's
    /// size (1 if rank ≤ 2, else `rank`).
    pub fn handle_size(rank: usize) -> usize {
        rank + if rank <= 2 { 1 } else { rank }
    }

    /// `con(A) = ref(A)·(|rhs(A)| − |handle(A)|) − |rhs(A)|` (§III-A3):
    /// how much the grammar shrinks thanks to `A`. Positive ⇒ the rule earns
    /// its keep.
    pub fn contribution(&self, nt: u32, ref_count: usize) -> i64 {
        let rhs = &self.rules[nt as usize];
        let rhs_size = rhs.total_size() as i64;
        let handle = Self::handle_size(rhs.rank()) as i64;
        ref_count as i64 * (rhs_size - handle) - rhs_size
    }

    // ------------------------------------------------------------------
    // Reference structure
    // ------------------------------------------------------------------

    /// `ref(A)` for every nonterminal: number of A-labeled edges in the start
    /// graph and in all right-hand sides.
    pub fn ref_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.rules.len()];
        let mut scan = |g: &Hypergraph| {
            for e in g.edges() {
                if let EdgeLabel::Nonterminal(i) = e.label {
                    counts[i as usize] += 1;
                }
            }
        };
        scan(&self.start);
        for rhs in &self.rules {
            scan(rhs);
        }
        counts
    }

    /// Bottom-up ≤NT order: every nonterminal appears after all nonterminals
    /// referenced from its right-hand side. Errors if ≤NT is cyclic (the
    /// grammar would not be straight-line).
    pub fn topo_order_bottom_up(&self) -> Result<Vec<u32>, String> {
        let n = self.rules.len();
        let mut state = vec![0u8; n]; // 0 = unseen, 1 = open, 2 = done
        let mut order = Vec::with_capacity(n);
        for root in 0..n as u32 {
            if state[root as usize] == 2 {
                continue;
            }
            // Iterative DFS; stack holds (nt, next child index).
            let mut stack: Vec<(u32, Vec<u32>, usize)> =
                vec![(root, self.nt_children(root), 0)];
            state[root as usize] = 1;
            while let Some((nt, children, idx)) = stack.last_mut() {
                if *idx < children.len() {
                    let child = children[*idx];
                    *idx += 1;
                    match state[child as usize] {
                        0 => {
                            state[child as usize] = 1;
                            let grand = self.nt_children(child);
                            stack.push((child, grand, 0));
                        }
                        1 => {
                            return Err(format!(
                                "grammar is not straight-line: cycle through N{child}"
                            ))
                        }
                        _ => {}
                    }
                } else {
                    state[*nt as usize] = 2;
                    order.push(*nt);
                    stack.pop();
                }
            }
        }
        Ok(order)
    }

    /// Nonterminals referenced from `nt`'s right-hand side (with duplicates
    /// removed, in first-occurrence order).
    fn nt_children(&self, nt: u32) -> Vec<u32> {
        let mut seen = Vec::new();
        for e in self.rules[nt as usize].edges() {
            if let EdgeLabel::Nonterminal(i) = e.label {
                if !seen.contains(&i) {
                    seen.push(i);
                }
            }
        }
        seen
    }

    /// `height(G)`: the height of the ≤NT relation (1 + longest chain of
    /// nested nonterminal references; 0 for a rule-free grammar).
    pub fn height(&self) -> usize {
        let Ok(order) = self.topo_order_bottom_up() else {
            return usize::MAX;
        };
        let mut depth = vec![0usize; self.rules.len()];
        for &nt in &order {
            let d = self
                .nt_children(nt)
                .iter()
                .map(|&c| depth[c as usize])
                .max()
                .unwrap_or(0);
            depth[nt as usize] = d + 1;
        }
        depth.into_iter().max().unwrap_or(0)
    }

    // ------------------------------------------------------------------
    // Validation
    // ------------------------------------------------------------------

    /// Check the straight-line HR grammar invariants:
    /// * every graph passes [`Hypergraph::validate`],
    /// * terminal labels are `< num_terminals`, nonterminal labels have
    ///   rules,
    /// * every nonterminal edge's rank equals its rule's rank
    ///   (`rank(A) = rank(rhs(A))`, Def. 1),
    /// * ≤NT is acyclic (Def. straight-line).
    pub fn validate(&self) -> Result<(), String> {
        let check_graph = |g: &Hypergraph, what: &str| -> Result<(), String> {
            g.validate().map_err(|e| format!("{what}: {e}"))?;
            for e in g.edges() {
                match e.label {
                    EdgeLabel::Terminal(t) => {
                        if t >= self.num_terminals {
                            return Err(format!(
                                "{what}: edge {} has terminal label {t} >= |Σ| = {}",
                                e.id, self.num_terminals
                            ));
                        }
                    }
                    EdgeLabel::Nonterminal(i) => {
                        let Some(rhs) = self.rules.get(i as usize) else {
                            return Err(format!("{what}: edge {} references missing rule N{i}", e.id));
                        };
                        if rhs.rank() != e.att.len() {
                            return Err(format!(
                                "{what}: edge {} has rank {} but N{i} has rank {}",
                                e.id,
                                e.att.len(),
                                rhs.rank()
                            ));
                        }
                    }
                }
            }
            Ok(())
        };
        check_graph(&self.start, "start graph")?;
        for (i, rhs) in self.rules.iter().enumerate() {
            check_graph(rhs, &format!("rhs of N{i}"))?;
        }
        self.topo_order_bottom_up()?;
        Ok(())
    }

    /// Drop unreferenced rules and renumber nonterminals densely.
    /// Returns the old→new index mapping (`u32::MAX` for dropped rules).
    ///
    /// Only rules with `ref(A) = 0` are dropped — dropping a referenced rule
    /// would change the language, so inline first (see the pruner in
    /// `grepair-core`).
    pub fn drop_unreferenced_rules(&mut self) -> Vec<u32> {
        let refs = self.ref_counts();
        let mut mapping = vec![u32::MAX; self.rules.len()];
        let mut next = 0u32;
        for (i, &r) in refs.iter().enumerate() {
            if r > 0 {
                mapping[i] = next;
                next += 1;
            }
        }
        // Relabel in place: edge IDs must survive (provenance is keyed by
        // start-graph edge IDs).
        let relabel = |g: &mut Hypergraph, mapping: &[u32]| {
            let edits: Vec<_> = g
                .edges()
                .filter_map(|e| match e.label {
                    EdgeLabel::Nonterminal(i) => Some((e.id, mapping[i as usize])),
                    EdgeLabel::Terminal(_) => None,
                })
                .collect();
            for (id, new_label) in edits {
                debug_assert_ne!(new_label, u32::MAX, "edge references dropped rule");
                g.set_label(id, EdgeLabel::Nonterminal(new_label));
            }
        };
        let mut kept: Vec<Hypergraph> = Vec::with_capacity(next as usize);
        for (i, rhs) in std::mem::take(&mut self.rules).into_iter().enumerate() {
            if mapping[i] != u32::MAX {
                kept.push(rhs);
            }
        }
        self.rules = kept;
        relabel(&mut self.start, &mapping);
        for i in 0..self.rules.len() {
            let mut rhs = std::mem::take(&mut self.rules[i]);
            relabel(&mut rhs, &mapping);
            self.rules[i] = rhs;
        }
        mapping
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grepair_hypergraph::EdgeLabel::{Nonterminal as N, Terminal as T};

    /// The grammar of Fig. 1a: S = A A A on a 4-node path, A → a·b digram
    /// (rank 2, one internal node).
    pub(crate) fn fig1_grammar() -> Grammar {
        let mut start = Hypergraph::with_nodes(4);
        start.add_edge(N(0), &[0, 1]);
        start.add_edge(N(0), &[1, 2]);
        start.add_edge(N(0), &[2, 3]);
        let mut rhs = Hypergraph::with_nodes(3);
        rhs.add_edge(T(0), &[0, 1]); // a: ext0 -> internal
        rhs.add_edge(T(1), &[1, 2]); // b: internal -> ext1
        rhs.set_ext(vec![0, 2]);
        let mut g = Grammar::new(start, 2);
        g.add_rule(rhs);
        g
    }

    #[test]
    fn fig1_is_valid() {
        fig1_grammar().validate().unwrap();
    }

    #[test]
    fn fig1_sizes() {
        let g = fig1_grammar();
        // |S| = 4 nodes + 3 rank-2 edges = 7; |rhs(A)| = 3 + 2 = 5.
        assert_eq!(g.size(), 12);
        assert_eq!(g.node_size(), 7);
        assert_eq!(g.edge_size(), 5);
        assert_eq!(g.height(), 1);
    }

    #[test]
    fn handle_sizes() {
        assert_eq!(Grammar::handle_size(1), 2);
        assert_eq!(Grammar::handle_size(2), 3);
        assert_eq!(Grammar::handle_size(3), 6);
        assert_eq!(Grammar::handle_size(4), 8);
    }

    /// Reconstruction of the Fig. 6 pruning example: S has 9 nodes and four
    /// rank-2 A-edges; rhs(A) has 3 nodes (1 internal) and 2 edges.
    /// Then |rhs| = 5, |handle| = 3, ref = 4 and con(A) = 4·(5−3)−5 = 3.
    pub(crate) fn fig6_grammar() -> Grammar {
        let mut start = Hypergraph::with_nodes(9);
        start.add_edge(N(0), &[0, 1]);
        start.add_edge(N(0), &[2, 3]);
        start.add_edge(N(0), &[4, 5]);
        start.add_edge(N(0), &[6, 7]);
        // node 8 is shared context (keeps the graph honest, no edges needed)
        let mut rhs = Hypergraph::with_nodes(3);
        rhs.add_edge(T(0), &[0, 2]);
        rhs.add_edge(T(0), &[2, 1]);
        rhs.set_ext(vec![0, 1]);
        let mut g = Grammar::new(start, 1);
        g.add_rule(rhs);
        g
    }

    #[test]
    fn fig6_contribution_is_three() {
        let g = fig6_grammar();
        let refs = g.ref_counts();
        assert_eq!(refs[0], 4);
        assert_eq!(g.contribution(0, refs[0]), 3);
    }

    #[test]
    fn contribution_of_singly_referenced_rule_is_negative() {
        // con(A) with ref = 1 is −|handle| < 0 (§III-A3).
        let g = fig6_grammar();
        assert_eq!(g.contribution(0, 1), -3);
    }

    #[test]
    fn topo_order_and_height_of_nested_rules() {
        // N1 references N0; S references N1.
        let mut start = Hypergraph::with_nodes(2);
        start.add_edge(N(1), &[0, 1]);
        let mut rhs0 = Hypergraph::with_nodes(2);
        rhs0.add_edge(T(0), &[0, 1]);
        rhs0.set_ext(vec![0, 1]);
        let mut rhs1 = Hypergraph::with_nodes(2);
        rhs1.add_edge(N(0), &[0, 1]);
        rhs1.add_edge(T(0), &[1, 0]);
        rhs1.set_ext(vec![0, 1]);
        let mut g = Grammar::new(start, 1);
        g.add_rule(rhs0);
        g.add_rule(rhs1);
        g.validate().unwrap();
        let order = g.topo_order_bottom_up().unwrap();
        assert!(order.iter().position(|&x| x == 0) < order.iter().position(|&x| x == 1));
        assert_eq!(g.height(), 2);
    }

    #[test]
    fn cyclic_grammar_is_rejected() {
        let mut start = Hypergraph::with_nodes(2);
        start.add_edge(N(0), &[0, 1]);
        let mut rhs0 = Hypergraph::with_nodes(2);
        rhs0.add_edge(N(1), &[0, 1]);
        rhs0.set_ext(vec![0, 1]);
        let mut rhs1 = Hypergraph::with_nodes(2);
        rhs1.add_edge(N(0), &[0, 1]);
        rhs1.set_ext(vec![0, 1]);
        let mut g = Grammar::new(start, 1);
        g.add_rule(rhs0);
        g.add_rule(rhs1);
        assert!(g.validate().is_err());
    }

    #[test]
    fn rank_mismatch_is_rejected() {
        let mut start = Hypergraph::with_nodes(3);
        start.add_edge(N(0), &[0, 1, 2]); // rank 3 edge
        let mut rhs = Hypergraph::with_nodes(2);
        rhs.add_edge(T(0), &[0, 1]);
        rhs.set_ext(vec![0, 1]); // rank 2 rule
        let mut g = Grammar::new(start, 1);
        g.add_rule(rhs);
        let err = g.validate().unwrap_err();
        assert!(err.contains("rank"), "{err}");
    }

    #[test]
    fn out_of_alphabet_terminal_is_rejected() {
        let mut start = Hypergraph::with_nodes(2);
        start.add_edge(T(5), &[0, 1]);
        let g = Grammar::new(start, 2);
        assert!(g.validate().is_err());
    }

    #[test]
    fn drop_unreferenced_rules_renumbers() {
        let mut start = Hypergraph::with_nodes(2);
        start.add_edge(N(1), &[0, 1]);
        let mut dead_rhs = Hypergraph::with_nodes(2);
        dead_rhs.add_edge(T(0), &[0, 1]);
        dead_rhs.set_ext(vec![0, 1]);
        let mut live_rhs = Hypergraph::with_nodes(2);
        live_rhs.add_edge(T(0), &[1, 0]);
        live_rhs.set_ext(vec![0, 1]);
        let mut g = Grammar::new(start, 1);
        g.add_rule(dead_rhs); // N0: unreferenced
        g.add_rule(live_rhs); // N1: referenced from S
        let mapping = g.drop_unreferenced_rules();
        assert_eq!(mapping, vec![u32::MAX, 0]);
        assert_eq!(g.num_nonterminals(), 1);
        g.validate().unwrap();
        let labels: Vec<_> = g.start.edges().map(|e| e.label).collect();
        assert_eq!(labels, vec![N(0)]);
    }

    #[test]
    fn ref_counts_span_start_and_rules() {
        let mut start = Hypergraph::with_nodes(2);
        start.add_edge(N(1), &[0, 1]);
        let mut rhs0 = Hypergraph::with_nodes(2);
        rhs0.add_edge(T(0), &[0, 1]);
        rhs0.set_ext(vec![0, 1]);
        let mut rhs1 = Hypergraph::with_nodes(2);
        rhs1.add_edge(N(0), &[0, 1]);
        rhs1.add_edge(N(0), &[1, 0]);
        rhs1.set_ext(vec![0, 1]);
        let mut g = Grammar::new(start, 1);
        g.add_rule(rhs0);
        g.add_rule(rhs1);
        assert_eq!(g.ref_counts(), vec![2, 1]);
    }
}
