//! Rule application and full derivation `val(G)`.

use crate::grammar::Grammar;
use grepair_hypergraph::{EdgeId, EdgeLabel, Hypergraph, NodeId};

/// Result of inlining one nonterminal edge.
#[derive(Debug, Clone)]
pub struct InlineResult {
    /// Host nodes created for the rhs's internal nodes, in rhs node-ID order.
    pub created_nodes: Vec<NodeId>,
    /// Host edges created for the rhs's edges, in rhs edge-ID order.
    pub created_edges: Vec<EdgeId>,
}

/// Derive nonterminal edge `e` of `host` using `rhs` (§II: remove `e`, add a
/// disjoint copy of `rhs`, merge its i-th external node with the i-th
/// attached node of `e`).
///
/// New nodes are appended in rhs node-ID order and new edges in rhs edge-ID
/// order — the layout every provenance computation in this workspace relies
/// on.
///
/// # Panics
/// If `e` is not a nonterminal edge or ranks mismatch.
pub fn apply_rule(host: &mut Hypergraph, e: EdgeId, rhs: &Hypergraph) -> InlineResult {
    let att: Vec<NodeId> = host.att(e).to_vec();
    assert!(
        host.label(e).is_nonterminal(),
        "cannot derive terminal edge {e}"
    );
    assert_eq!(att.len(), rhs.rank(), "edge rank != rule rank");
    host.remove_edge(e);

    // Map rhs nodes to host nodes: externals merge with e's attachments,
    // internals become fresh host nodes (in rhs node-ID order).
    let mut node_map = vec![NodeId::MAX; rhs.node_bound()];
    for (i, &x) in rhs.ext().iter().enumerate() {
        node_map[x as usize] = att[i];
    }
    let mut created_nodes = Vec::new();
    for v in rhs.node_ids() {
        if node_map[v as usize] == NodeId::MAX {
            let nv = host.add_node();
            node_map[v as usize] = nv;
            created_nodes.push(nv);
        }
    }
    let mut created_edges = Vec::new();
    let mut att_buf: Vec<NodeId> = Vec::new();
    for redge in rhs.edges() {
        att_buf.clear();
        att_buf.extend(redge.att.iter().map(|&x| node_map[x as usize]));
        created_edges.push(host.add_edge(redge.label, &att_buf));
    }
    InlineResult { created_nodes, created_edges }
}

impl Grammar {
    /// Number of internal nodes `val(e)` creates for one edge labeled with
    /// each nonterminal, computed bottom-up without expanding anything.
    pub fn derived_internal_node_counts(&self) -> Vec<u64> {
        let order = self
            .topo_order_bottom_up()
            .expect("grammar must be straight-line");
        let mut counts = vec![0u64; self.num_nonterminals()];
        for nt in order {
            let rhs = self.rule(nt);
            let mut total = (rhs.num_nodes() - rhs.rank()) as u64;
            for e in rhs.edges() {
                if let EdgeLabel::Nonterminal(i) = e.label {
                    total += counts[i as usize];
                }
            }
            counts[nt as usize] = total;
        }
        counts
    }

    /// Number of terminal edges `val(e)` contains for one edge labeled with
    /// each nonterminal.
    pub fn derived_terminal_edge_counts(&self) -> Vec<u64> {
        let order = self
            .topo_order_bottom_up()
            .expect("grammar must be straight-line");
        let mut counts = vec![0u64; self.num_nonterminals()];
        for nt in order {
            let rhs = self.rule(nt);
            let mut total = 0u64;
            for e in rhs.edges() {
                match e.label {
                    EdgeLabel::Terminal(_) => total += 1,
                    EdgeLabel::Nonterminal(i) => total += counts[i as usize],
                }
            }
            counts[nt as usize] = total;
        }
        counts
    }

    /// `|val(G)|V` without deriving.
    pub fn derived_node_count(&self) -> u64 {
        let internal = self.derived_internal_node_counts();
        let mut total = self.start.num_nodes() as u64;
        for e in self.start.edges() {
            if let EdgeLabel::Nonterminal(i) = e.label {
                total += internal[i as usize];
            }
        }
        total
    }

    /// `|val(G)|`'s terminal edge count without deriving.
    pub fn derived_edge_count(&self) -> u64 {
        let per_nt = self.derived_terminal_edge_counts();
        let mut total = 0u64;
        for e in self.start.edges() {
            match e.label {
                EdgeLabel::Terminal(_) => total += 1,
                EdgeLabel::Nonterminal(i) => total += per_nt[i as usize],
            }
        }
        total
    }

    /// Compute `val(G)` with the paper's deterministic node IDs (§II end):
    /// the alive start-graph nodes first (in increasing ID order), then, for
    /// each nonterminal edge in edge-ID order, the nodes its derivation
    /// creates — internal nodes of the rhs first, nested nonterminal edges
    /// next, depth-first.
    ///
    /// Returns the derived graph plus `start_node_of`: for alive start node
    /// `v` (in increasing order), `start_node_of[i]` is its derived ID
    /// (always `i`, recorded explicitly for clarity in callers).
    pub fn derive(&self) -> Hypergraph {
        let mut out = Hypergraph::new();
        let mut node_map = vec![NodeId::MAX; self.start.node_bound()];
        for v in self.start.node_ids() {
            node_map[v as usize] = out.add_node();
        }
        let mut att_buf: Vec<NodeId> = Vec::new();
        for e in self.start.edges() {
            att_buf.clear();
            att_buf.extend(e.att.iter().map(|&x| node_map[x as usize]));
            match e.label {
                EdgeLabel::Terminal(_) => {
                    out.add_edge(e.label, &att_buf);
                }
                EdgeLabel::Nonterminal(i) => {
                    let att = att_buf.clone();
                    self.expand_into(&mut out, i, &att);
                }
            }
        }
        out
    }

    /// Recursively expand one `nt`-labeled edge whose attachment (already in
    /// output IDs) is `att`, appending to `out`.
    fn expand_into(&self, out: &mut Hypergraph, nt: u32, att: &[NodeId]) {
        let rhs = self.rule(nt);
        debug_assert_eq!(att.len(), rhs.rank());
        let mut node_map = vec![NodeId::MAX; rhs.node_bound()];
        for (i, &x) in rhs.ext().iter().enumerate() {
            node_map[x as usize] = att[i];
        }
        for v in rhs.node_ids() {
            if node_map[v as usize] == NodeId::MAX {
                node_map[v as usize] = out.add_node();
            }
        }
        let mut att_buf: Vec<NodeId> = Vec::new();
        for e in rhs.edges() {
            att_buf.clear();
            att_buf.extend(e.att.iter().map(|&x| node_map[x as usize]));
            match e.label {
                EdgeLabel::Terminal(_) => {
                    out.add_edge(e.label, &att_buf);
                }
                EdgeLabel::Nonterminal(i) => {
                    let att = att_buf.clone();
                    self.expand_into(out, i, &att);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grepair_hypergraph::EdgeLabel::{Nonterminal as N, Terminal as T};

    fn fig1_grammar() -> Grammar {
        let mut start = Hypergraph::with_nodes(4);
        start.add_edge(N(0), &[0, 1]);
        start.add_edge(N(0), &[1, 2]);
        start.add_edge(N(0), &[2, 3]);
        let mut rhs = Hypergraph::with_nodes(3);
        rhs.add_edge(T(0), &[0, 1]);
        rhs.add_edge(T(1), &[1, 2]);
        rhs.set_ext(vec![0, 2]);
        let mut g = Grammar::new(start, 2);
        g.add_rule(rhs);
        g
    }

    #[test]
    fn fig1_full_derivation() {
        // Fig. 1b: applying the A-rule three times yields the terminal graph
        // with three a- and three b-edges: 0 →a 4 →b 1 →a 5 →b 2 →a 6 →b 3.
        let g = fig1_grammar();
        let derived = g.derive();
        assert_eq!(derived.num_nodes(), 7);
        assert_eq!(derived.num_edges(), 6);
        let expect = vec![
            (T(0), vec![0, 4]),
            (T(0), vec![1, 5]),
            (T(0), vec![2, 6]),
            (T(1), vec![4, 1]),
            (T(1), vec![5, 2]),
            (T(1), vec![6, 3]),
        ];
        assert_eq!(derived.edge_multiset(), expect);
    }

    #[test]
    fn derived_counts_match_derivation() {
        let g = fig1_grammar();
        assert_eq!(g.derived_node_count(), 7);
        assert_eq!(g.derived_edge_count(), 6);
        assert_eq!(g.derived_internal_node_counts(), vec![1]);
        assert_eq!(g.derived_terminal_edge_counts(), vec![2]);
    }

    #[test]
    fn fig6_id_assignment() {
        // Fig. 7: a 9-node start graph with four rank-2 A-edges derives a
        // 13-node graph; the nodes created by the A-edges (in edge order)
        // are numbered 9, 10, 11, 12 (0-based; 10..13 in the paper).
        let mut start = Hypergraph::with_nodes(9);
        start.add_edge(N(0), &[0, 1]);
        start.add_edge(N(0), &[2, 3]);
        start.add_edge(N(0), &[4, 5]);
        start.add_edge(N(0), &[6, 7]);
        let mut rhs = Hypergraph::with_nodes(3);
        rhs.add_edge(T(0), &[0, 2]);
        rhs.add_edge(T(0), &[2, 1]);
        rhs.set_ext(vec![0, 1]);
        let mut g = Grammar::new(start, 1);
        g.add_rule(rhs);
        let derived = g.derive();
        assert_eq!(derived.num_nodes(), 13);
        assert_eq!(derived.num_edges(), 8);
        // First A-edge's internal node is 9 and carries edges 0→9→1, etc.
        for (i, (s, t)) in [(0u32, 1u32), (2, 3), (4, 5), (6, 7)].iter().enumerate() {
            let mid = 9 + i as u32;
            let ms = derived.edge_multiset();
            assert!(ms.contains(&(T(0), vec![*s, mid])), "missing {s}->{mid}");
            assert!(ms.contains(&(T(0), vec![mid, *t])), "missing {mid}->{t}");
        }
        // |G| = |S| + |rhs| = (9+4) + (3+2) = 18; |val| = 13 + 8 = 21;
        // they differ by exactly con(A) = 3 — the paper's Fig. 6 check.
        assert_eq!(derived.total_size() - g.size(), 3);
    }

    #[test]
    fn nested_rules_expand_depth_first() {
        // S holds one N1-edge; N1 → N0 · c; N0 → a · b. The derivation is
        // depth-first, so N1's internal node (2) is created before N0's (3).
        let mut start = Hypergraph::with_nodes(2);
        start.add_edge(N(1), &[0, 1]);
        let mut rhs0 = Hypergraph::with_nodes(3);
        rhs0.add_edge(T(0), &[0, 1]);
        rhs0.add_edge(T(1), &[1, 2]);
        rhs0.set_ext(vec![0, 2]);
        let mut rhs1 = Hypergraph::with_nodes(3);
        rhs1.add_edge(N(0), &[0, 2]);
        rhs1.add_edge(T(2), &[2, 1]);
        rhs1.set_ext(vec![0, 1]);
        let mut g = Grammar::new(start, 3);
        g.add_rule(rhs0);
        g.add_rule(rhs1);
        g.validate().unwrap();
        let derived = g.derive();
        // Nodes: 0, 1 from S; 2 = N1's internal; 3 = N0's internal.
        assert_eq!(derived.num_nodes(), 4);
        let expect = vec![
            (T(0), vec![0, 3]),
            (T(1), vec![3, 2]),
            (T(2), vec![2, 1]),
        ];
        assert_eq!(derived.edge_multiset(), expect);
        assert_eq!(g.derived_node_count(), 4);
        assert_eq!(g.derived_edge_count(), 3);
    }

    #[test]
    fn apply_rule_merges_externals() {
        let g = fig1_grammar();
        let mut host = g.start.clone();
        let result = apply_rule(&mut host, 0, g.rule(0));
        assert_eq!(result.created_nodes, vec![4]);
        assert_eq!(result.created_edges.len(), 2);
        assert_eq!(host.num_edges(), 4); // 2 A-edges + a + b
        assert_eq!(host.att(result.created_edges[0]), &[0, 4]);
        assert_eq!(host.att(result.created_edges[1]), &[4, 1]);
        host.validate().unwrap();
    }

    #[test]
    fn apply_rule_with_hyperedge_rhs() {
        let mut start = Hypergraph::with_nodes(3);
        start.add_edge(N(0), &[0, 1, 2]);
        let mut rhs = Hypergraph::with_nodes(4);
        rhs.add_edge(T(0), &[0, 1, 3]); // hyperedge touching internal node 3
        rhs.add_edge(T(0), &[3, 2]);
        rhs.set_ext(vec![0, 1, 2]);
        let mut g = Grammar::new(start, 1);
        g.add_rule(rhs);
        g.validate().unwrap();
        let derived = g.derive();
        assert_eq!(derived.num_nodes(), 4);
        let ms = derived.edge_multiset();
        assert!(ms.contains(&(T(0), vec![0, 1, 3])));
        assert!(ms.contains(&(T(0), vec![3, 2])));
    }

    #[test]
    #[should_panic(expected = "cannot derive terminal edge")]
    fn apply_rule_on_terminal_panics() {
        let mut host = Hypergraph::with_nodes(2);
        let e = host.add_edge(T(0), &[0, 1]);
        let mut rhs = Hypergraph::with_nodes(2);
        rhs.set_ext(vec![0, 1]);
        apply_rule(&mut host, e, &rhs);
    }

    #[test]
    fn string_repair_style_chain() {
        // Classic string RePair: S → BBB, B → Ac, A → ab over a path graph,
        // i.e. val(G) is the string graph of (abc)^3.
        let mut start = Hypergraph::with_nodes(4);
        start.add_edge(N(1), &[0, 1]);
        start.add_edge(N(1), &[1, 2]);
        start.add_edge(N(1), &[2, 3]);
        let mut rhs_a = Hypergraph::with_nodes(3); // A → a b
        rhs_a.add_edge(T(0), &[0, 2]);
        rhs_a.add_edge(T(1), &[2, 1]);
        rhs_a.set_ext(vec![0, 1]);
        let mut rhs_b = Hypergraph::with_nodes(3); // B → A c
        rhs_b.add_edge(N(0), &[0, 2]);
        rhs_b.add_edge(T(2), &[2, 1]);
        rhs_b.set_ext(vec![0, 1]);
        let mut g = Grammar::new(start, 3);
        g.add_rule(rhs_a);
        g.add_rule(rhs_b);
        g.validate().unwrap();
        assert_eq!(g.height(), 2);
        let derived = g.derive();
        assert_eq!(derived.num_nodes(), 10); // 4 + 3·2
        assert_eq!(derived.num_edges(), 9);
        // Walk the path reading labels: must spell (a b c)^3.
        let mut v = 0u32;
        let mut word = Vec::new();
        while let Some(e) = derived.incident(v).find(|&e| derived.att(e)[0] == v) {
            word.push(derived.label(e).index());
            v = derived.att(e)[1];
        }
        assert_eq!(word, vec![0, 1, 2, 0, 1, 2, 0, 1, 2]);
    }
}
