//! Binary-level tests for `repro` flag handling: unknown flags (including
//! `--help`) must print a usage message and exit non-zero instead of
//! silently running nothing.

use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn unknown_flags_are_usage_errors() {
    for bad in [&["--help"][..], &["--tabel1"], &["table1"], &["--table1", "--bogus"]] {
        let out = repro(bad);
        assert!(!out.status.success(), "{bad:?} must exit non-zero");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("usage:"), "{bad:?} must print usage:\n{stderr}");
        assert!(stderr.contains("unknown flag"), "{bad:?}:\n{stderr}");
        // Nothing ran: no table banner on stdout.
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(!stdout.contains("==="), "{bad:?} must not run sections:\n{stdout}");
    }
}

#[test]
fn known_section_still_runs() {
    let out = repro(&["--table1", "--quick"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Table I"), "{stdout}");
}
