//! The probe client against a live loopback server: the bench workload
//! generator, the wire rendering, and the pipelined client must agree with
//! the in-process batch API answer for answer.

use std::sync::Arc;

use grepair_bench::serving::{mixed_batch, probe_server, query_line};
use grepair_core::{compress, GRePairConfig};
use grepair_hypergraph::Hypergraph;
use grepair_server::{Server, ServerConfig};
use grepair_store::{error_reply, write_container, GraphStore, StoreRegistry};

fn fixture_bytes() -> Vec<u8> {
    let reps = 24u32;
    let (g, _) = Hypergraph::from_simple_edges(
        (2 * reps + 1) as usize,
        (0..reps).flat_map(|i| [(2 * i, 0u32, 2 * i + 1), (2 * i + 1, 1u32, 2 * i + 2)]),
    );
    let out = compress(&g, &GRePairConfig::default());
    let enc = grepair_codec::encode(&out.grammar);
    write_container(&enc.bytes, enc.bit_len)
}

#[test]
fn probe_answers_match_the_in_process_batch() {
    let bytes = fixture_bytes();
    let registry = Arc::new(StoreRegistry::new(GraphStore::from_bytes(&bytes).unwrap()));
    let server =
        Server::bind(&ServerConfig::default(), Arc::clone(&registry), None).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.handle().unwrap();
    let thread = std::thread::spawn(move || server.run().unwrap());

    let store = GraphStore::from_bytes(&bytes).unwrap();
    let queries = mixed_batch(store.total_nodes(), 2_000);
    let lines: Vec<String> = queries.iter().map(query_line).collect();
    let report = probe_server(&addr.to_string(), &lines).unwrap();
    assert_eq!(report.sent, queries.len());
    assert_eq!(report.answers.len(), queries.len());
    assert!(report.elapsed_ns > 0.0);
    assert!(report.throughput_qps() > 0.0);

    let expected = store.query_batch(&queries);
    for (i, (got, want)) in report.answers.iter().zip(&expected).enumerate() {
        let want = match want {
            Ok(a) => a.to_string(),
            Err(e) => error_reply(e),
        };
        assert_eq!(got, &want, "answer {i} ({:?})", queries[i]);
    }
    assert_eq!(
        report.errors,
        expected.iter().filter(|a| a.is_err()).count(),
        "error count must match"
    );

    handle.stop();
    thread.join().unwrap();
}
