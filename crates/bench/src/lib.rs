//! Experiment harness: dataset registry and measurement helpers shared by
//! the `repro` binary (which regenerates every table and figure of the
//! paper's evaluation) and the Criterion micro-benchmarks.
//!
//! Datasets are scaled-down analogs of the paper's (see DESIGN.md §4): the
//! shapes and relative densities match, the absolute sizes are chosen so the
//! full reproduction runs in minutes on a laptop. Pass `Scale::Quick` to
//! shrink everything by a further 4× for smoke runs.

#![forbid(unsafe_code)]

use grepair_baselines::{hn, k2, lm};
use grepair_codec::EncodedGrammar;
use grepair_core::{compress, CompressedGraph, GRePairConfig};
use grepair_datasets::{network, rdf, stats, ttt, version, DatasetStats};
use grepair_hypergraph::Hypergraph;

pub mod serving;

/// The flags the `repro` binary understands: every section of the paper's
/// evaluation, the global `--quick` scale switch, and `--all`.
pub const REPRO_FLAGS: &[&str] = &[
    "--all", "--quick", "--table1", "--table2", "--table3", "--table4", "--table5", "--table6",
    "--fig10", "--fig11", "--fig12", "--fig13", "--fig14", "--ratios", "--queries", "--strings",
];

/// Check a `repro` argument list: `Err(flag)` names the first argument that
/// is not a known flag (including `--help` — `repro` has no options beyond
/// [`REPRO_FLAGS`], so anything else is a usage error, not a silent no-op).
pub fn validate_repro_flags(args: &[String]) -> Result<(), String> {
    match args.iter().find(|a| !REPRO_FLAGS.contains(&a.as_str())) {
        Some(unknown) => Err(unknown.clone()),
        None => Ok(()),
    }
}

/// Dataset family, mirroring the paper's three tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Table I.
    Network,
    /// Table II.
    Rdf,
    /// Table III.
    Version,
}

/// A named benchmark graph.
pub struct NamedGraph {
    /// Display name (the paper's dataset it stands in for).
    pub name: &'static str,
    /// Which table it belongs to.
    pub family: Family,
    /// The graph itself.
    pub graph: Hypergraph,
}

/// Global size multiplier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Default sizes (full repro ~minutes).
    Full,
    /// 4× smaller for smoke runs.
    Quick,
}

impl Scale {
    fn apply(self, n: usize) -> usize {
        match self {
            Scale::Full => n,
            Scale::Quick => (n / 4).max(64),
        }
    }
}

/// The eight network graphs of Table I (scaled analogs).
pub fn network_suite(scale: Scale) -> Vec<NamedGraph> {
    let s = |n| scale.apply(n);
    vec![
        NamedGraph {
            name: "CA-AstroPh",
            family: Family::Network,
            graph: network::co_authorship(s(9_000), s(10_000), 9, 101),
        },
        NamedGraph {
            name: "CA-CondMat",
            family: Family::Network,
            graph: network::co_authorship(s(12_000), s(8_000), 5, 102),
        },
        NamedGraph {
            name: "CA-GrQc",
            family: Family::Network,
            graph: network::co_authorship(s(5_242), s(3_200), 5, 103),
        },
        NamedGraph {
            name: "Email-Enron",
            family: Family::Network,
            graph: network::hub_network(s(18_000), 100, 4, 104),
        },
        NamedGraph {
            name: "Email-EuAll",
            family: Family::Network,
            graph: network::hub_network(s(53_000), 24, 1, 105),
        },
        NamedGraph {
            name: "NotreDame",
            family: Family::Network,
            graph: network::web_copy(s(33_000), 5, 0.65, 106),
        },
        NamedGraph {
            name: "Wiki-Talk",
            family: Family::Network,
            graph: network::hub_network(s(96_000), 160, 1, 107),
        },
        NamedGraph {
            name: "Wiki-Vote",
            family: Family::Network,
            graph: network::preferential_attachment(s(7_115), 14, 108),
        },
    ]
}

/// The six RDF graphs of Table II (scaled analogs; label counts match).
pub fn rdf_suite(scale: Scale) -> Vec<NamedGraph> {
    let s = |n| scale.apply(n);
    vec![
        NamedGraph {
            name: "SpecificProps-en",
            family: Family::Rdf,
            graph: rdf::property_graph(s(24_000), 71, 14, s(5_000), 201),
        },
        NamedGraph {
            name: "Types-ru",
            family: Family::Rdf,
            graph: rdf::types_star(s(64_000), 24, 202),
        },
        NamedGraph {
            name: "Types-es",
            family: Family::Rdf,
            graph: rdf::types_star(s(82_000), 48, 203),
        },
        NamedGraph {
            name: "Types-de-en",
            family: Family::Rdf,
            graph: rdf::types_star(s(62_000), 64, 204),
        },
        NamedGraph {
            name: "Identica",
            family: Family::Rdf,
            graph: rdf::property_graph(s(5_500), 12, 6, s(1_200), 205),
        },
        NamedGraph {
            name: "Jamendo",
            family: Family::Rdf,
            graph: rdf::property_graph(s(44_000), 25, 8, s(9_000), 206),
        },
    ]
}

/// The DBLP-style histories behind Table III / Fig. 14.
pub fn dblp_history(scale: Scale, years: usize) -> version::CoauthorshipHistory {
    version::CoauthorshipHistory::generate(
        years,
        scale.apply(220),
        scale.apply(2_400),
        scale.apply(160),
        301,
    )
}

/// The four version graphs of Table III.
pub fn version_suite(scale: Scale) -> Vec<NamedGraph> {
    let short = dblp_history(scale, 11);
    let long = dblp_history(scale, 19);
    vec![
        NamedGraph {
            name: "Tic-Tac-Toe",
            family: Family::Version,
            graph: ttt::subdue_endgames(),
        },
        NamedGraph {
            name: "Chess",
            family: Family::Version,
            graph: version::chess_like(scale.apply(26_000), 12, 302),
        },
        NamedGraph {
            name: "DBLP60-70",
            family: Family::Version,
            graph: short.version_graph(10),
        },
        NamedGraph {
            name: "DBLP60-90",
            family: Family::Version,
            graph: long.version_graph(18),
        },
    ]
}

/// One gRePair measurement: compress + serialize, return bpe and artifacts.
pub struct GRePairRun {
    /// Bits per edge of the serialized grammar.
    pub bpe: f64,
    /// Output size in bits.
    pub bits: u64,
    /// The compression result.
    pub compressed: CompressedGraph,
    /// The serialized form.
    pub encoded: EncodedGrammar,
}

/// Run gRePair end to end with `config`.
pub fn run_grepair(g: &Hypergraph, config: &GRePairConfig) -> GRePairRun {
    let compressed = compress(g, config);
    let encoded = grepair_codec::encode(&compressed.grammar);
    GRePairRun {
        bpe: encoded.bits_per_edge(g.num_edges()),
        bits: encoded.bit_len,
        compressed,
        encoded,
    }
}

/// k²-tree baseline bpe.
pub fn run_k2(g: &Hypergraph) -> (f64, u64) {
    let enc = k2::encode(g);
    (enc.bits_per_edge(g.num_edges()), enc.bit_len)
}

/// LM baseline bpe (unlabeled graphs only).
pub fn run_lm(g: &Hypergraph) -> (f64, u64) {
    let enc = lm::encode(g);
    (enc.bits_per_edge(g.num_edges()), enc.bit_len)
}

/// HN baseline bpe (unlabeled graphs only).
pub fn run_hn(g: &Hypergraph) -> (f64, u64) {
    let enc = hn::encode(g, &hn::HnParams::default());
    (enc.bits_per_edge(g.num_edges()), enc.bit_len)
}

/// True if all edges share one label (LM/HN apply only then, as in §IV-C3).
pub fn is_unlabeled(g: &Hypergraph) -> bool {
    g.edges()
        .all(|e| e.label == grepair_hypergraph::EdgeLabel::Terminal(0))
}

/// Tables I–III row.
pub fn dataset_stats(g: &Hypergraph) -> DatasetStats {
    stats(g)
}

/// Format a table row of fixed-width cells.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repro_flags_validate() {
        let args = |list: &[&str]| -> Vec<String> { list.iter().map(|s| s.to_string()).collect() };
        assert_eq!(validate_repro_flags(&args(&[])), Ok(()));
        assert_eq!(validate_repro_flags(&args(&["--table1", "--quick"])), Ok(()));
        assert_eq!(validate_repro_flags(&args(&["--all"])), Ok(()));
        // Unknown flags — including --help — name the offender.
        assert_eq!(validate_repro_flags(&args(&["--help"])), Err("--help".into()));
        assert_eq!(
            validate_repro_flags(&args(&["--table1", "--tabel2"])),
            Err("--tabel2".into())
        );
        assert_eq!(validate_repro_flags(&args(&["table1"])), Err("table1".into()));
    }

    #[test]
    fn suites_are_nonempty_and_deterministic() {
        let a = network_suite(Scale::Quick);
        let b = network_suite(Scale::Quick);
        assert_eq!(a.len(), 8);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.graph.num_edges(), y.graph.num_edges(), "{}", x.name);
        }
        assert_eq!(rdf_suite(Scale::Quick).len(), 6);
        assert_eq!(version_suite(Scale::Quick).len(), 4);
    }

    #[test]
    fn quick_scale_shrinks() {
        let full = network_suite(Scale::Full);
        let quick = network_suite(Scale::Quick);
        let full_edges: usize = full.iter().map(|d| d.graph.num_edges()).sum();
        let quick_edges: usize = quick.iter().map(|d| d.graph.num_edges()).sum();
        assert!(quick_edges * 2 < full_edges);
    }

    #[test]
    fn run_helpers_agree_on_small_graph() {
        let g = grepair_datasets::version::disjoint_copies(
            &grepair_datasets::version::circle_with_diagonal(),
            16,
        );
        let gr = run_grepair(&g, &GRePairConfig::default());
        let (k2_bpe, _) = run_k2(&g);
        assert!(gr.bpe < k2_bpe, "gRePair {} vs k2 {}", gr.bpe, k2_bpe);
        assert!(is_unlabeled(&g));
        run_lm(&g);
        run_hn(&g);
    }
}
