//! Serving-path measurement for the machine-readable bench trajectory.
//!
//! `repro --queries` calls [`measure_store_serving`] and writes the result
//! as `BENCH_store.json` (via [`render_store_bench_json`]) at the
//! repository root, where CI checks it and successive PRs can diff it. The
//! workload mirrors `benches/store.rs`: one loaded [`GraphStore`] answering
//! a 10k mixed batch, measured per query class, batched vs individual, and
//! fanned out over 1/2/4/8 worker threads.

use std::time::Instant;

use grepair_core::{compress, GRePairConfig};
use grepair_hypergraph::Hypergraph;
use grepair_store::{write_container, GraphStore, Query};

use crate::Scale;

/// Thread counts the scaling sweep measures.
pub const SCALING_THREADS: [usize; 4] = [1, 2, 4, 8];

/// One compression backend's size and serving-latency measurement — the
/// paper's Table-style comparison (space *and* query cost per
/// representation), live against the real serving stack.
#[derive(Debug, Clone)]
pub struct BackendBenchRow {
    /// Registered backend name (`grepair`, `k2`, `lm`, `hn`).
    pub name: &'static str,
    /// Whole container file size in bytes (header included — what a
    /// deployment ships).
    pub container_bytes: usize,
    /// Container bits per edge of the measured graph.
    pub bits_per_edge: f64,
    /// Mean ns per one-shot `neighbors` query through the loaded store.
    pub neighbors_ns: f64,
    /// Mean ns per one-shot `reach` query.
    pub reach_ns: f64,
}

/// One hosted tenant's measured row: container size on disk, and the
/// cold-open latency the first query after an eviction pays (load + index
/// from the container file, the transparently-amortized cache-miss cost of
/// `--memory-budget`).
#[derive(Debug, Clone)]
pub struct TenantBenchRow {
    /// Namespace name inside the measuring registry.
    pub name: String,
    /// Container file size in bytes — the currency `--memory-budget`
    /// accounts in.
    pub container_bytes: u64,
    /// Best-of-laps ns for a cold `StoreRegistry::store` resolve (open +
    /// index) after the namespace was evicted.
    pub cold_open_ns: f64,
}

/// The multi-tenant hosting measurement (DESIGN.md §8): several containers
/// behind one registry whose memory budget is below their combined size,
/// so the LRU policy must evict and transparently reopen.
#[derive(Debug, Clone)]
pub struct TenancyReport {
    /// The resident-byte cap the registry ran under.
    pub budget_bytes: u64,
    /// Sum of every tenant's container bytes — deliberately over budget.
    pub combined_bytes: u64,
    /// Evictions the budget forced over the whole measurement.
    pub evictions: u64,
    /// Cold opens (first-touch and evicted-then-reopened) over the run.
    pub cold_opens: u64,
    /// Resident container bytes when the measurement finished.
    pub resident_bytes: u64,
    /// Per-tenant size and cold-open rows.
    pub tenants: Vec<TenantBenchRow>,
}

/// Everything `BENCH_store.json` records, in measurement units of
/// nanoseconds (floats: per-query numbers are means).
#[derive(Debug, Clone)]
pub struct StoreBenchReport {
    /// `"quick"` or `"full"`.
    pub scale: &'static str,
    /// `std::thread::available_parallelism()` on the measuring machine —
    /// readers must interpret the scaling factor relative to this.
    pub threads_available: usize,
    /// Mean ns per one-shot query, per query class.
    pub class_ns: Vec<(&'static str, f64)>,
    /// Whole 10k mixed batch through `query_batch`, ns.
    pub batch_sequential_ns: f64,
    /// The same 10k queries one `query` call at a time, ns.
    pub batch_individual_ns: f64,
    /// `(threads, whole-batch ns)` through `query_batch_parallel`.
    pub thread_scaling: Vec<(usize, f64)>,
    /// Per-backend size + query latency over one shared unlabeled graph.
    pub backends: Vec<BackendBenchRow>,
    /// Multi-tenant hosting under a memory budget (schema 3).
    pub tenancy: TenancyReport,
    /// Degradation-under-fault measurement (schema 4, DESIGN.md §10).
    pub resilience: ResilienceReport,
    /// Connection-scale measurement of the epoll front end (schema 5,
    /// DESIGN.md §11).
    pub connections: ConnectionsReport,
    /// Delta-layer versioning measurement (schema 6, DESIGN.md §12).
    pub versioning: VersioningReport,
}

/// The `versioning` block (schema 6): patch-apply latency, the overlay's
/// head-vs-base query cost, and the overlay-size crossover — what it costs
/// to keep serving through the delta layer versus recompressing the
/// materialized head from scratch (DESIGN.md §12). The workload is the
/// paper's version-graph story made incremental: a co-authorship history's
/// year-over-year new edges applied as `PATCH ADD` records to the year-0
/// snapshot.
#[derive(Debug, Clone)]
pub struct VersioningReport {
    /// Retained versions after the replay (head version + 1).
    pub versions: u64,
    /// Added-edge records in the head overlay.
    pub overlay_added: u64,
    /// Removed-edge records in the head overlay.
    pub overlay_removed: u64,
    /// Mean ns per applied patch (validate + overlay clone + swap).
    pub patch_apply_ns: f64,
    /// Mean ns per `out`-neighbors query on the patched head (base answer
    /// ⊕ overlay correction).
    pub head_neighbors_ns: f64,
    /// Mean ns per the same query pinned `@v0` (the raw base container).
    pub v0_neighbors_ns: f64,
    /// Mean ns per the same query on a from-scratch recompression of the
    /// materialized head — the overlay-free floor.
    pub recompressed_neighbors_ns: f64,
    /// One-off ns to materialize the head and recompress it — what the
    /// overlay defers (`RELOAD`-rebase or `store patch` pays it once).
    pub recompress_ns: f64,
}

impl VersioningReport {
    /// Head query cost over the overlay-free floor: how much the delta
    /// layer taxes serving. When this drifts far above 1, the overlay has
    /// crossed over and a rebase (recompress + `RELOAD`) pays for itself.
    pub fn overlay_tax(&self) -> f64 {
        if self.recompressed_neighbors_ns <= 0.0 {
            return 0.0;
        }
        self.head_neighbors_ns / self.recompressed_neighbors_ns
    }
}

/// The `connections` block (schema 5): how many idle connections one
/// server holds on a flat thread count, and what serving costs while they
/// are parked — the epoll front end's scaling contract (DESIGN.md §11).
/// `threads_*` come from `/proc/self/status` (the measuring server runs
/// in-process), so they are zero on platforms without procfs, where the
/// flatness claim is vacuous.
#[derive(Debug, Clone)]
pub struct ConnectionsReport {
    /// Front end measured: `"epoll"` on Linux, `"threads"` elsewhere.
    pub io: &'static str,
    /// Idle connections actually parked (the scale target clamped to the
    /// process fd limit — each loopback connection costs two fds here).
    pub connections: u64,
    /// Process thread count before the herd connected.
    pub threads_base: u64,
    /// Process thread count with the whole herd parked.
    pub threads_during: u64,
    /// Process thread count after the throughput burst, herd still parked.
    pub threads_after: u64,
    /// Parked connections proven live (`PING` → `pong`) by sampling.
    pub live_sampled: u64,
    /// Queries in the saturated burst driven over a fresh connection
    /// while the herd stayed parked.
    pub burst_queries: u64,
    /// Client-observed throughput of that burst, queries/second.
    pub burst_qps: f64,
}

impl ConnectionsReport {
    /// Did the thread count stay flat across the soak? Headroom of two
    /// absorbs incidental runtime threads — nothing proportional to the
    /// herd. Vacuously true where procfs is unavailable (all zeros).
    pub fn flat(&self) -> bool {
        self.threads_during <= self.threads_base + 2
            && self.threads_after <= self.threads_base + 2
    }
}

/// The `resilience` block (schema 4): circuit-breaker trip, fast-fail and
/// recovery, watermark load-shedding, and drain latency. Measured against
/// the real registry and a real socket server using *honest* faults — a
/// deleted container file, a one-deep watermark over a one-thread pool, a
/// live `SHUTDOWN` — so the numbers exist in a default build where the
/// `fail` feature's injected faults are compiled out (DESIGN.md §10).
#[derive(Debug, Clone)]
pub struct ResilienceReport {
    /// Breaker trips recorded while the flaky tenant's container was gone.
    pub breaker_trips: u64,
    /// Mean ns per refused resolve while the breaker was open — the fast
    /// per-line refusal that replaces hammering a dead disk.
    pub breaker_fast_fail_ns: f64,
    /// Whether the half-open probe re-admitted the tenant once its
    /// container came back.
    pub breaker_recovered: bool,
    /// Query lines pushed at the deliberately overloaded server.
    pub shed_sent: u64,
    /// How many of those were answered `busy` (shed at the watermark).
    pub shed_busy: u64,
    /// Wall ns from writing `SHUTDOWN` to the accept loop fully drained.
    pub drain_latency_ns: f64,
}

impl ResilienceReport {
    /// Fraction of the overload workload shed with `busy` lines.
    pub fn shed_rate(&self) -> f64 {
        if self.shed_sent == 0 {
            return 0.0;
        }
        self.shed_busy as f64 / self.shed_sent as f64
    }
}

impl StoreBenchReport {
    /// How much batching beats one-at-a-time serving.
    pub fn batch_speedup(&self) -> f64 {
        self.batch_individual_ns / self.batch_sequential_ns
    }

    /// Sequential-batch time over the best parallel time: the headline
    /// thread-scaling factor (≤ ~1 on a single-core machine).
    pub fn scaling_factor(&self) -> f64 {
        let best = self
            .thread_scaling
            .iter()
            .map(|&(_, ns)| ns)
            .fold(f64::INFINITY, f64::min);
        self.batch_sequential_ns / best
    }
}

/// The acceptance workload: 10k mixed queries against one loaded store
/// (shared with `benches/store.rs`). Request popularity is skewed the way
/// real serving traffic is: three quarters of the ids come from a ~61-key
/// hot set (what the batch amortization levers — shared reach sources,
/// shared RPQ product closures, the locate cache, the duplicate memo —
/// exist for), one quarter from a uniform tail that keeps the caches
/// honest.
pub fn mixed_batch(n: u64, len: u64) -> Vec<Query> {
    let hot = |i: u64| ((i % 61) * 2_654_435_761) % n;
    let cold = |i: u64| (i.wrapping_mul(7919) + 13) % n;
    let pick = |i: u64| if i.is_multiple_of(4) { cold(i) } else { hot(i) };
    (0..len)
        .map(|i| match i % 5 {
            0 => Query::OutNeighbors(pick(i)),
            1 => Query::InNeighbors(pick(i + 1)),
            2 => Query::Reach { s: pick(i + 2), t: cold(i) },
            3 => Query::Rpq {
                s: pick(i + 3),
                t: cold(i + 1),
                pattern: if i % 2 == 0 { "0 1".into() } else { "0* 1*".into() },
            },
            _ => Query::Neighbors(pick(i + 4)),
        })
        .collect()
}

/// Render one query as a wire-protocol request line (DESIGN.md §6) — the
/// inverse of `grepair_store::parse_query`, used to drive a live
/// `grepair-server` with the same workloads the in-process benches use.
pub fn query_line(q: &Query) -> String {
    match q {
        Query::OutNeighbors(v) => format!("out {v}"),
        Query::InNeighbors(v) => format!("in {v}"),
        Query::Neighbors(v) => format!("neighbors {v}"),
        Query::Reach { s, t } => format!("reach {s} {t}"),
        Query::Rpq { s, t, pattern } => format!("rpq {s} {t} {pattern}"),
        Query::Components => "components".into(),
        Query::DegreeExtrema => "degrees".into(),
    }
}

fn time_ns(f: impl FnOnce()) -> f64 {
    let t = Instant::now();
    f();
    t.elapsed().as_nanos() as f64
}

/// Best of `n` timed runs — the standard microbenchmark defense against
/// one-off scheduler noise, which matters doubly here because CI asserts a
/// hard threshold on the derived scaling factor.
fn best_of(n: usize, mut f: impl FnMut()) -> f64 {
    (0..n.max(1))
        .map(|_| time_ns(&mut f))
        .fold(f64::INFINITY, f64::min)
}

/// Measure every registered backend on one shared unlabeled graph: encode
/// size, then neighbors/reach latency through a loaded [`GraphStore`] —
/// the same serving stack the TCP server runs, so the rows are what a
/// deployment choosing a backend would actually see.
pub fn measure_backends(scale: Scale) -> Vec<BackendBenchRow> {
    // An unlabeled path (the lm/hn backends encode unlabeled graphs only):
    // the paper's log-compressibility showcase for the grammar, linear for
    // the baselines — the Fig. 13 story as serving containers.
    let reps = match scale {
        Scale::Full => 16_384u32,
        Scale::Quick => 2_048,
    };
    let (g, _) = Hypergraph::from_simple_edges(
        (reps + 1) as usize,
        (0..reps).map(|i| (i, 0u32, i + 1)),
    );
    let edges = g.num_edges() as u64;
    grepair_store::codecs()
        .iter()
        .map(|codec| {
            let file = codec.encode(&g).expect("path graph encodes in every backend");
            let store = GraphStore::from_bytes(&file).expect("own container loads");
            let n = store.total_nodes();
            let per_class = 1_000u64;
            let neighbor_queries: Vec<u64> = (0..per_class).map(|i| (i * 17) % n).collect();
            for &v in neighbor_queries.iter().take(50) {
                let _ = store.neighbors(v); // warm caches
            }
            let neighbors_ns = time_ns(|| {
                for &v in &neighbor_queries {
                    assert!(store.neighbors(v).is_ok());
                }
            }) / per_class as f64;
            // Reach is BFS-shaped on the baseline backends (O(n) worst
            // case), so the sample is smaller; the grammar answers from
            // its skeleton index.
            let reach_pairs: Vec<(u64, u64)> =
                (0..100u64).map(|i| ((i * 7919) % n, (i * 104_729 + 13) % n)).collect();
            let reach_ns = time_ns(|| {
                for &(s, t) in &reach_pairs {
                    assert!(store.reachable(s, t).is_ok());
                }
            }) / reach_pairs.len() as f64;
            BackendBenchRow {
                name: codec.name(),
                container_bytes: file.len(),
                bits_per_edge: grepair_util::fmt::bits_per_edge(file.len() as u64 * 8, edges),
                neighbors_ns,
                reach_ns,
            }
        })
        .collect()
}

/// Measure multi-tenant hosting: three grammar containers of different
/// sizes behind one [`grepair_store::StoreRegistry`] whose budget is half
/// their combined size. Phase one forces a cold open per resolve (budget
/// of one byte: touching any tenant evicts the rest) to time the
/// evicted-then-reopened path; phase two round-robins real queries under
/// the honest budget so the eviction and cold-open counters reflect
/// steady-state churn.
pub fn measure_multi_tenant(scale: Scale) -> TenancyReport {
    use grepair_store::StoreRegistry;

    let base = match scale {
        Scale::Full => 2_048u32,
        Scale::Quick => 256,
    };
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let names = ["alpha", "beta", "gamma"];
    let mut paths = Vec::new();
    for (i, mult) in [1u32, 2, 4].into_iter().enumerate() {
        let reps = base * mult;
        let (g, _) = Hypergraph::from_simple_edges(
            (2 * reps + 1) as usize,
            (0..reps).flat_map(|r| [(2 * r, 0u32, 2 * r + 1), (2 * r + 1, 1u32, 2 * r + 2)]),
        );
        let out = compress(&g, &GRePairConfig::default());
        let enc = grepair_codec::encode(&out.grammar);
        let path = dir.join(format!("grepair_bench_tenant_{pid}_{i}.g2g"));
        std::fs::write(&path, write_container(&enc.bytes, enc.bit_len))
            .expect("bench scratch file writes");
        paths.push(path);
    }
    let sizes: Vec<u64> =
        paths.iter().map(|p| std::fs::metadata(p).expect("scratch file stats").len()).collect();
    let combined: u64 = sizes.iter().sum();
    let budget = combined / 2;

    let registry = StoreRegistry::open(paths[0].to_str().unwrap()).expect("tenant container opens");
    // The registry's own `default` namespace doubles as tenant "alpha";
    // the other two attach cold, exactly like `--attach` at startup.
    let resolve_names = ["default", names[1], names[2]];
    for (name, path) in names.iter().zip(&paths).skip(1) {
        registry.attach_cold(name, path.to_str().unwrap()).expect("cold attach");
    }

    // Phase one: cold-open latency. With a one-byte budget every resolve
    // evicts the other tenants, so each lap's resolve is a true cache
    // miss (open + index from the container file).
    registry.set_budget(Some(1));
    for name in resolve_names {
        registry.store(name).expect("warm-up resolve"); // establish the evicted steady state
    }
    let mut cold_open_ns = vec![f64::INFINITY; names.len()];
    for _lap in 0..3 {
        for (i, name) in resolve_names.iter().enumerate() {
            let ns = time_ns(|| {
                registry.store(name).expect("cold resolve");
            });
            cold_open_ns[i] = cold_open_ns[i].min(ns);
        }
    }

    // Phase two: steady-state churn under the honest budget — round-robin
    // queries force the LRU policy to evict and transparently reopen.
    registry.set_budget(Some(budget));
    for round in 0..20u64 {
        for name in resolve_names {
            let store = registry.store(name).expect("tenant resolves under budget");
            let n = store.total_nodes();
            store.query(&Query::OutNeighbors((round * 7) % n)).expect("in-range query");
        }
    }

    let stats = registry.aggregate_stats();
    assert!(
        stats.resident_bytes <= budget.max(*sizes.iter().max().expect("nonempty")),
        "eviction failed to hold the budget: {stats}"
    );
    let report = TenancyReport {
        budget_bytes: budget,
        combined_bytes: combined,
        evictions: stats.evictions,
        cold_opens: stats.cold_opens,
        resident_bytes: stats.resident_bytes,
        tenants: names
            .iter()
            .zip(&sizes)
            .zip(&cold_open_ns)
            .map(|((name, bytes), ns)| TenantBenchRow {
                name: name.to_string(),
                container_bytes: *bytes,
                cold_open_ns: *ns,
            })
            .collect(),
    };
    for path in &paths {
        let _ = std::fs::remove_file(path);
    }
    report
}

/// Measure the degradation machinery of DESIGN.md §10 with honest faults
/// (no `fail` feature required):
///
/// 1. **Breaker** — attach a tenant cold, delete its container, resolve
///    until the consecutive-failure threshold trips the breaker, time the
///    open-breaker fast refusals, then restore the file and wait for the
///    half-open probe to re-admit it.
/// 2. **Shedding** — a real socket server with a one-thread pool and a
///    shed watermark of one, hammered by four pipelined clients pushing
///    whole-graph queries: most batches land while another is in flight
///    and are answered with `busy` lines instead of queueing deeper.
/// 3. **Drain** — `SHUTDOWN` over the wire, timed from the request write
///    until the accept loop finishes its graceful exit.
pub fn measure_resilience(scale: Scale) -> ResilienceReport {
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;
    use std::sync::Arc;

    use grepair_server::{Server, ServerConfig};
    use grepair_store::{StoreRegistry, BREAKER_COOLDOWN, BREAKER_THRESHOLD};

    let reps = match scale {
        Scale::Full => 1_024u32,
        Scale::Quick => 256,
    };
    let (g, _) = Hypergraph::from_simple_edges(
        (2 * reps + 1) as usize,
        (0..reps).flat_map(|r| [(2 * r, 0u32, 2 * r + 1), (2 * r + 1, 1u32, 2 * r + 2)]),
    );
    let out = compress(&g, &GRePairConfig::default());
    let enc = grepair_codec::encode(&out.grammar);
    let container = write_container(&enc.bytes, enc.bit_len);

    // 1. Breaker: the flaky tenant's container vanishes between the cold
    // attach and the first resolve — the honest version of a dead disk.
    let flaky_path = std::env::temp_dir()
        .join(format!("grepair_bench_flaky_{}.g2g", std::process::id()));
    std::fs::write(&flaky_path, &container).expect("bench scratch file writes");
    let registry = StoreRegistry::new(
        GraphStore::from_bytes(&container).expect("freshly compressed grammar loads"),
    );
    registry
        .attach_cold("flaky", flaky_path.to_str().expect("temp paths are unicode"))
        .expect("cold attach");
    std::fs::remove_file(&flaky_path).expect("bench scratch file removes");
    for _ in 0..BREAKER_THRESHOLD {
        assert!(registry.store("flaky").is_err(), "the container is gone");
    }
    let open_probes = 100u64;
    let breaker_fast_fail_ns = time_ns(|| {
        for _ in 0..open_probes {
            assert!(registry.store("flaky").is_err(), "an open breaker refuses fast");
        }
    }) / open_probes as f64;
    let breaker_trips =
        registry.health_of("flaky").expect("flaky is attached").breaker_trips;
    std::fs::write(&flaky_path, &container).expect("bench scratch file writes");
    std::thread::sleep(BREAKER_COOLDOWN);
    let mut breaker_recovered = false;
    for _ in 0..10 {
        if registry.store("flaky").is_ok() {
            breaker_recovered = true;
            break;
        }
        std::thread::sleep(BREAKER_COOLDOWN / 5);
    }
    let _ = std::fs::remove_file(&flaky_path);

    // 2. Shedding: two worker threads (one would make `query_batch_on`
    // fall back to inline execution and never touch the pool), watermark
    // one, small batches, four pipelined clients pushing whole-graph
    // traversals — while one batch occupies the pool, every other
    // session's flush is over the watermark and sheds.
    let config = ServerConfig {
        threads: 2,
        batch: 32,
        shed_watermark: 1,
        ..ServerConfig::default()
    };
    let server_registry = Arc::new(StoreRegistry::new(
        GraphStore::from_bytes(&container).expect("freshly compressed grammar loads"),
    ));
    let server =
        Server::bind(&config, server_registry, None).expect("bind ephemeral loopback port");
    let addr = server.local_addr().expect("bound address").to_string();
    let run = std::thread::spawn(move || server.run());
    let per_client = match scale {
        Scale::Full => 600u64,
        Scale::Quick => 200,
    };
    let (mut shed_sent, mut shed_busy) = (0u64, 0u64);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let addr = addr.as_str();
                s.spawn(move || {
                    let lines: Vec<String> =
                        (0..per_client).map(|_| query_line(&Query::Components)).collect();
                    let report =
                        probe_server(addr, &lines).expect("probe the shedding server");
                    let busy = report.answers.iter().filter(|a| *a == "busy").count();
                    (report.sent as u64, busy as u64)
                })
            })
            .collect();
        for h in handles {
            let (sent, busy) = h.join().expect("shed client thread");
            shed_sent += sent;
            shed_busy += busy;
        }
    });

    // 3. Drain: `SHUTDOWN` stops the accept loop and waits for in-flight
    // sessions; the latency is request-write to `run()` returning.
    let mut stream = TcpStream::connect(&addr).expect("connect for SHUTDOWN");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let t = Instant::now();
    stream.write_all(b"SHUTDOWN\n").expect("send SHUTDOWN");
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("read the draining reply");
    assert_eq!(reply, "draining\n", "SHUTDOWN acknowledges before draining");
    run.join()
        .expect("server thread")
        .expect("drained accept loop exits cleanly");
    let drain_latency_ns = t.elapsed().as_nanos() as f64;

    ResilienceReport {
        breaker_trips,
        breaker_fast_fail_ns,
        breaker_recovered,
        shed_sent,
        shed_busy,
        drain_latency_ns,
    }
}

/// `Threads:` from this process's `/proc/self/status`, or zero where
/// procfs does not exist.
fn self_threads() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find_map(|l| l.strip_prefix("Threads:"))
                .and_then(|v| v.trim().parse().ok())
        })
        .unwrap_or(0)
}

/// The soft fd limit from `/proc/self/limits`, or a conservative default.
/// Each parked loopback connection costs this process two fds (client end
/// plus server end), so the herd is clamped to fit with headroom.
fn fd_limit() -> usize {
    std::fs::read_to_string("/proc/self/limits")
        .ok()
        .and_then(|limits| {
            limits
                .lines()
                .find(|l| l.starts_with("Max open files"))
                .and_then(|l| l.split_whitespace().nth(3))
                .and_then(|soft| soft.parse().ok())
        })
        .unwrap_or(1024)
}

/// Measure connection scale (DESIGN.md §11): an in-process server on the
/// epoll front end (Linux; the thread front end elsewhere), a herd of idle
/// connections parked against it, the process thread count sampled around
/// the soak, a `PING` liveness check across the herd, and a saturated
/// mixed-workload burst on a fresh connection while the herd stays parked.
/// At full scale the herd target is 10 000 connections — raise the fd
/// limit to at least ~20 128 to measure it unclamped.
pub fn measure_connections(scale: Scale) -> ConnectionsReport {
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;
    use std::sync::Arc;

    use grepair_server::{IoMode, Server, ServerConfig};
    use grepair_store::StoreRegistry;

    let (target, burst) = match scale {
        Scale::Full => (10_000usize, 10_000u64),
        Scale::Quick => (256, 2_000),
    };
    let n = target.min(fd_limit().saturating_sub(128) / 2).max(8);
    let io = if cfg!(target_os = "linux") { IoMode::Epoll } else { IoMode::Threads };

    let reps = match scale {
        Scale::Full => 1_024u32,
        Scale::Quick => 256,
    };
    let (g, _) = Hypergraph::from_simple_edges(
        (2 * reps + 1) as usize,
        (0..reps).flat_map(|r| [(2 * r, 0u32, 2 * r + 1), (2 * r + 1, 1u32, 2 * r + 2)]),
    );
    let out = compress(&g, &GRePairConfig::default());
    let enc = grepair_codec::encode(&out.grammar);
    let container = write_container(&enc.bytes, enc.bit_len);
    let registry = Arc::new(StoreRegistry::new(
        GraphStore::from_bytes(&container).expect("freshly compressed grammar loads"),
    ));
    let nodes = registry.store("default").expect("default resolves").total_nodes();
    let config = ServerConfig { io, threads: 2, max_connections: n + 64, ..ServerConfig::default() };
    let server = Server::bind(&config, registry, None).expect("bind ephemeral loopback port");
    let addr = server.local_addr().expect("bound address").to_string();
    let handle = server.handle().expect("server handle");
    let run = std::thread::spawn(move || server.run());

    // Warm every lazily-spawned thread (pool workers, drain watcher)
    // before taking the baseline.
    let _ = probe_server(&addr, &["PING".to_string()]).expect("warmup probe");
    let threads_base = self_threads();

    let mut idle: Vec<TcpStream> = Vec::with_capacity(n);
    for i in 0..n {
        match TcpStream::connect(&addr) {
            Ok(stream) => idle.push(stream),
            Err(e) => panic!("connect {i}/{n} failed: {e} (raise ulimit -n for full scale)"),
        }
    }
    // Let the reactor accept the tail of the burst before sampling.
    std::thread::sleep(std::time::Duration::from_millis(200));
    let threads_during = self_threads();

    // Liveness sample spread across the herd: parked connections must be
    // real sessions, not just accepted fds.
    let sample = 32usize.min(n);
    let mut live = 0u64;
    for s in 0..sample {
        let i = s * n / sample;
        let stream = &mut idle[i];
        stream.write_all(b"PING\n").expect("ping a parked connection");
        let mut reader = BufReader::new(stream.try_clone().expect("clone parked stream"));
        let mut line = String::new();
        reader.read_line(&mut line).expect("parked connection answers");
        assert_eq!(line, "pong\n", "parked connection {i} is not a live session");
        live += 1;
    }

    // Saturated burst on a fresh connection while the herd stays parked:
    // the front end must serve at full speed with `n` registered sockets
    // it is not reading from.
    let lines: Vec<String> = mixed_batch(nodes, burst).iter().map(query_line).collect();
    let report = probe_server(&addr, &lines).expect("burst probe");
    assert_eq!(report.answers.len(), report.sent, "burst cut short");
    let threads_after = self_threads();

    drop(idle);
    handle.stop();
    run.join().expect("server thread").expect("server exits cleanly");

    ConnectionsReport {
        io: match io {
            IoMode::Epoll => "epoll",
            IoMode::Threads => "threads",
        },
        connections: n as u64,
        threads_base,
        threads_during,
        threads_after,
        live_sampled: live,
        burst_queries: report.sent as u64,
        burst_qps: report.throughput_qps(),
    }
}

/// Measure the delta-layer versioning path (DESIGN.md §12): compress a
/// co-authorship history's year-0 snapshot, apply every later year's new
/// edges as patches, and compare head (overlay) serving against the pinned
/// base and against a from-scratch recompression of the materialized head.
pub fn measure_versioning(scale: Scale) -> VersioningReport {
    use std::collections::BTreeSet;
    use std::sync::Arc;

    use grepair_datasets::version::CoauthorshipHistory;
    use grepair_store::{codec_for, materialize, EdgePatch, PatchOp, VersionedStore};

    let (years, papers, initial, fresh) = match scale {
        Scale::Full => (8usize, 120usize, 400usize, 60usize),
        Scale::Quick => (4, 24, 80, 12),
    };
    let history = CoauthorshipHistory::generate(years, papers, initial, fresh, 11);
    // The k2 codec preserves node ids, so history edges patch in verbatim
    // (the grammar codec renumbers — its oracle needs a node map).
    let codec = codec_for("k2").expect("k2 backend registered");
    let base_graph = history.snapshot(0);
    let file = codec.encode(&base_graph).expect("base snapshot encodes");
    let base = GraphStore::from_bytes(&file).expect("fresh container loads");
    let versioned = VersionedStore::new(Arc::new(base)).expect("base within version bound");

    // Year-over-year diff: the ADD stream an incremental feed would carry.
    let edge_set = |g: &Hypergraph| -> BTreeSet<(u32, u32, u32)> {
        g.edges().map(|e| (e.att[0], e.label.index(), e.att[1])).collect()
    };
    let mut prev = edge_set(&base_graph);
    let mut patches = Vec::new();
    for y in 1..years {
        let snap = edge_set(&history.snapshot(y));
        for &(s, label, t) in snap.difference(&prev) {
            patches.push(EdgePatch { op: PatchOp::Add, s: s as u64, label, t: t as u64 });
        }
        prev = snap;
    }
    assert!(!patches.is_empty(), "the history must grow year over year");

    let patch_total_ns = time_ns(|| {
        for patch in &patches {
            versioned.apply(*patch).expect("diffed patches apply cleanly");
        }
    });
    let head = versioned.head();
    let v0 = versioned.at(0).expect("v0 is always retained");
    let summary = *versioned.summaries().last().expect("v0 is always retained");

    // The overlay-free floor: materialize the head and recompress it.
    let mut recompressed = None;
    let recompress_ns = time_ns(|| {
        let g = materialize(&head).expect("head materializes");
        let bytes = codec.encode(&g).expect("materialized head encodes");
        recompressed = Some(GraphStore::from_bytes(&bytes).expect("recompressed head loads"));
    });
    let recompressed = recompressed.expect("filled by the timed closure");

    let probes = 2_000u64;
    let mean_neighbors_ns = |store: &GraphStore| -> f64 {
        let n = store.total_nodes();
        for i in 0..50 {
            let _ = store.query(&Query::OutNeighbors(i % n));
        }
        best_of(3, || {
            for i in 0..probes {
                let _ = store.query(&Query::OutNeighbors((i * 31) % n));
            }
        }) / probes as f64
    };

    VersioningReport {
        versions: summary.version + 1,
        overlay_added: summary.added,
        overlay_removed: summary.removed,
        patch_apply_ns: patch_total_ns / patches.len() as f64,
        head_neighbors_ns: mean_neighbors_ns(&head),
        v0_neighbors_ns: mean_neighbors_ns(&v0),
        recompressed_neighbors_ns: mean_neighbors_ns(&recompressed),
        recompress_ns,
    }
}

/// Run the serving workload and collect every number the JSON records.
pub fn measure_store_serving(scale: Scale) -> StoreBenchReport {
    let reps = match scale {
        Scale::Full => 16_384u32,
        Scale::Quick => 2_048,
    };
    let (g, _) = Hypergraph::from_simple_edges(
        (2 * reps + 1) as usize,
        (0..reps).flat_map(|i| [(2 * i, 0u32, 2 * i + 1), (2 * i + 1, 1u32, 2 * i + 2)]),
    );
    let out = compress(&g, &GRePairConfig::default());
    let enc = grepair_codec::encode(&out.grammar);
    let store = GraphStore::from_bytes(&write_container(&enc.bytes, enc.bit_len))
        .expect("freshly compressed grammar loads");
    let n = store.total_nodes();

    // Per-class one-shot cost (warm caches: run each class once first).
    let per_class = 2_000u64;
    let classes: Vec<(&'static str, Vec<Query>)> = vec![
        ("out_neighbors", (0..per_class).map(|i| Query::OutNeighbors((i * 3) % n)).collect()),
        ("in_neighbors", (0..per_class).map(|i| Query::InNeighbors((i * 7) % n)).collect()),
        ("neighbors", (0..per_class).map(|i| Query::Neighbors((i * 17) % n)).collect()),
        (
            "reach",
            (0..per_class)
                .map(|i| Query::Reach { s: (i * 3) % n, t: (i * 11) % n })
                .collect(),
        ),
        (
            "rpq",
            (0..per_class)
                .map(|i| Query::Rpq { s: (i * 5) % n, t: (i * 13) % n, pattern: "0* 1*".into() })
                .collect(),
        ),
    ];
    let class_ns = classes
        .iter()
        .map(|(name, queries)| {
            for q in queries.iter().take(50) {
                let _ = store.query(q); // warm expansion/plan caches
            }
            let total = time_ns(|| {
                for q in queries {
                    let _ = store.query(q);
                }
            });
            (*name, total / queries.len() as f64)
        })
        .collect();

    let batch = mixed_batch(n, 10_000);
    let batch_sequential_ns = best_of(3, || {
        assert!(store.query_batch(&batch).iter().all(|a| a.is_ok()));
    });
    let batch_individual_ns = best_of(3, || {
        for q in &batch {
            assert!(store.query(q).is_ok());
        }
    });
    let thread_scaling = SCALING_THREADS
        .iter()
        .map(|&threads| {
            let ns = best_of(3, || {
                assert!(store
                    .query_batch_parallel(&batch, threads)
                    .iter()
                    .all(|a| a.is_ok()));
            });
            (threads, ns)
        })
        .collect();

    StoreBenchReport {
        scale: match scale {
            Scale::Full => "full",
            Scale::Quick => "quick",
        },
        threads_available: std::thread::available_parallelism().map(usize::from).unwrap_or(1),
        class_ns,
        batch_sequential_ns,
        batch_individual_ns,
        thread_scaling,
        backends: measure_backends(scale),
        tenancy: measure_multi_tenant(scale),
        resilience: measure_resilience(scale),
        connections: measure_connections(scale),
        versioning: measure_versioning(scale),
    }
}

/// What one socket probe against a live server measured.
#[derive(Debug, Clone)]
pub struct ProbeReport {
    /// Request lines sent (blank/comment lines are not requests).
    pub sent: usize,
    /// Every reply line, in order — for file mode these bytes are asserted
    /// identical to `store serve-file` on the same input.
    pub answers: Vec<String>,
    /// How many of the replies were `error:` lines.
    pub errors: usize,
    /// Wall time from first byte written to last reply read.
    pub elapsed_ns: f64,
}

impl ProbeReport {
    /// Requests per second over the whole probe.
    pub fn throughput_qps(&self) -> f64 {
        if self.elapsed_ns <= 0.0 {
            return 0.0;
        }
        self.sent as f64 / (self.elapsed_ns / 1e9)
    }
}

/// Stream `lines` to a live server at `addr` and collect one reply line
/// per request line — the client half of the wire protocol, pipelined: a
/// writer thread pushes the whole workload while this thread drains
/// replies, so neither side deadlocks on a full socket buffer.
pub fn probe_server(addr: &str, lines: &[String]) -> std::io::Result<ProbeReport> {
    use std::io::{BufRead, BufReader, BufWriter, Write};
    use std::net::{Shutdown, TcpStream};

    let stream = TcpStream::connect(addr)?;
    let _ = stream.set_nodelay(true);
    let reader = BufReader::new(stream.try_clone()?);
    let start = Instant::now();
    let sent = lines
        .iter()
        .filter(|l| {
            let t = l.trim();
            !t.is_empty() && !t.starts_with('#')
        })
        .count();
    let mut answers = Vec::with_capacity(sent);
    let mut errors = 0usize;
    // Scoped writer: borrows the workload (no copy of what may be millions
    // of request lines) while this thread drains replies concurrently —
    // the pipelined-client shape §6.1 requires to avoid self-deadlock on a
    // full socket buffer.
    std::thread::scope(|scope| -> std::io::Result<()> {
        let writer = scope.spawn(move || -> std::io::Result<()> {
            let mut out = BufWriter::new(&stream);
            for line in lines {
                out.write_all(line.as_bytes())?;
                out.write_all(b"\n")?;
            }
            out.flush()?;
            // Half-close: the server answers everything, then closes,
            // which ends the reader's drain below.
            stream.shutdown(Shutdown::Write)
        });
        for line in reader.lines() {
            let line = line?;
            if line.starts_with("error: ") {
                errors += 1;
            }
            answers.push(line);
        }
        writer.join().expect("probe writer thread")
    })?;
    let elapsed_ns = start.elapsed().as_nanos() as f64;
    Ok(ProbeReport { sent, answers, errors, elapsed_ns })
}

/// A JSON number: finite, fixed precision (JSON has no NaN/Infinity).
fn num(x: f64) -> String {
    assert!(x.is_finite(), "bench numbers must be finite, got {x}");
    format!("{x:.1}")
}

/// Render the report as the `BENCH_store.json` document. Hand-rolled — the
/// offline crate set has no serde — with stable key order so diffs between
/// PRs stay readable.
pub fn render_store_bench_json(r: &StoreBenchReport) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    // Schema 2 added the per-backend comparison rows (PR 5); schema 3
    // added the multi-tenant budget/eviction block (PR 6); schema 4 added
    // the resilience block (breaker / shed / drain, DESIGN.md §10);
    // schema 5 added the connections block (epoll connection scale,
    // DESIGN.md §11); schema 6 added the versioning block (patch latency
    // and the overlay-vs-recompression crossover, DESIGN.md §12).
    s.push_str("  \"schema\": 6,\n");
    s.push_str("  \"bench\": \"store\",\n");
    s.push_str(&format!("  \"scale\": \"{}\",\n", r.scale));
    s.push_str(&format!("  \"threads_available\": {},\n", r.threads_available));
    s.push_str("  \"query_classes_ns\": {\n");
    for (i, (name, ns)) in r.class_ns.iter().enumerate() {
        let comma = if i + 1 < r.class_ns.len() { "," } else { "" };
        s.push_str(&format!("    \"{name}\": {}{comma}\n", num(*ns)));
    }
    s.push_str("  },\n");
    s.push_str("  \"batch\": {\n");
    s.push_str(&format!("    \"sequential_ns\": {},\n", num(r.batch_sequential_ns)));
    s.push_str(&format!("    \"individual_ns\": {},\n", num(r.batch_individual_ns)));
    s.push_str(&format!("    \"speedup\": {}\n", num(r.batch_speedup())));
    s.push_str("  },\n");
    s.push_str("  \"thread_scaling\": [\n");
    for (i, (threads, ns)) in r.thread_scaling.iter().enumerate() {
        let comma = if i + 1 < r.thread_scaling.len() { "," } else { "" };
        s.push_str(&format!(
            "    {{ \"threads\": {threads}, \"batch_ns\": {}, \"factor\": {} }}{comma}\n",
            num(*ns),
            num(r.batch_sequential_ns / *ns)
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!("  \"scaling_factor\": {},\n", num(r.scaling_factor())));
    s.push_str("  \"backends\": [\n");
    for (i, b) in r.backends.iter().enumerate() {
        let comma = if i + 1 < r.backends.len() { "," } else { "" };
        s.push_str(&format!(
            "    {{ \"name\": \"{}\", \"container_bytes\": {}, \"bits_per_edge\": {}, \
             \"neighbors_ns\": {}, \"reach_ns\": {} }}{comma}\n",
            b.name,
            b.container_bytes,
            num(b.bits_per_edge),
            num(b.neighbors_ns),
            num(b.reach_ns)
        ));
    }
    s.push_str("  ],\n");
    let t = &r.tenancy;
    s.push_str("  \"multi_tenant\": {\n");
    s.push_str(&format!("    \"budget_bytes\": {},\n", t.budget_bytes));
    s.push_str(&format!("    \"combined_bytes\": {},\n", t.combined_bytes));
    s.push_str(&format!("    \"evictions\": {},\n", t.evictions));
    s.push_str(&format!("    \"cold_opens\": {},\n", t.cold_opens));
    s.push_str(&format!("    \"resident_bytes\": {},\n", t.resident_bytes));
    s.push_str("    \"tenants\": [\n");
    for (i, row) in t.tenants.iter().enumerate() {
        let comma = if i + 1 < t.tenants.len() { "," } else { "" };
        s.push_str(&format!(
            "      {{ \"name\": \"{}\", \"container_bytes\": {}, \"cold_open_ns\": {} }}{comma}\n",
            row.name,
            row.container_bytes,
            num(row.cold_open_ns)
        ));
    }
    s.push_str("    ]\n");
    s.push_str("  },\n");
    let res = &r.resilience;
    s.push_str("  \"resilience\": {\n");
    s.push_str(&format!("    \"breaker_trips\": {},\n", res.breaker_trips));
    s.push_str(&format!("    \"breaker_fast_fail_ns\": {},\n", num(res.breaker_fast_fail_ns)));
    s.push_str(&format!("    \"breaker_recovered\": {},\n", res.breaker_recovered));
    s.push_str(&format!("    \"shed_sent\": {},\n", res.shed_sent));
    s.push_str(&format!("    \"shed_busy\": {},\n", res.shed_busy));
    s.push_str(&format!("    \"shed_rate\": {},\n", num(res.shed_rate())));
    s.push_str(&format!("    \"drain_latency_ms\": {}\n", num(res.drain_latency_ns / 1e6)));
    s.push_str("  },\n");
    let c = &r.connections;
    s.push_str("  \"connections\": {\n");
    s.push_str(&format!("    \"io\": \"{}\",\n", c.io));
    s.push_str(&format!("    \"connections\": {},\n", c.connections));
    s.push_str(&format!("    \"threads_base\": {},\n", c.threads_base));
    s.push_str(&format!("    \"threads_during\": {},\n", c.threads_during));
    s.push_str(&format!("    \"threads_after\": {},\n", c.threads_after));
    s.push_str(&format!("    \"live_sampled\": {},\n", c.live_sampled));
    s.push_str(&format!("    \"burst_queries\": {},\n", c.burst_queries));
    s.push_str(&format!("    \"burst_qps\": {},\n", num(c.burst_qps)));
    s.push_str(&format!("    \"flat\": {}\n", c.flat()));
    s.push_str("  },\n");
    let v = &r.versioning;
    s.push_str("  \"versioning\": {\n");
    s.push_str(&format!("    \"versions\": {},\n", v.versions));
    s.push_str(&format!("    \"overlay_added\": {},\n", v.overlay_added));
    s.push_str(&format!("    \"overlay_removed\": {},\n", v.overlay_removed));
    s.push_str(&format!("    \"patch_apply_ns\": {},\n", num(v.patch_apply_ns)));
    s.push_str(&format!("    \"head_neighbors_ns\": {},\n", num(v.head_neighbors_ns)));
    s.push_str(&format!("    \"v0_neighbors_ns\": {},\n", num(v.v0_neighbors_ns)));
    s.push_str(&format!(
        "    \"recompressed_neighbors_ns\": {},\n",
        num(v.recompressed_neighbors_ns)
    ));
    s.push_str(&format!("    \"recompress_ns\": {},\n", num(v.recompress_ns)));
    s.push_str(&format!("    \"overlay_tax\": {}\n", num(v.overlay_tax())));
    s.push_str("  }\n");
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StoreBenchReport {
        StoreBenchReport {
            scale: "quick",
            threads_available: 8,
            class_ns: vec![("out_neighbors", 120.5), ("reach", 900.0)],
            batch_sequential_ns: 4_000_000.0,
            batch_individual_ns: 12_000_000.0,
            thread_scaling: vec![(1, 4_100_000.0), (8, 1_000_000.0)],
            backends: vec![
                BackendBenchRow {
                    name: "grepair",
                    container_bytes: 812,
                    bits_per_edge: 3.2,
                    neighbors_ns: 410.0,
                    reach_ns: 950.0,
                },
                BackendBenchRow {
                    name: "k2",
                    container_bytes: 2_048,
                    bits_per_edge: 8.0,
                    neighbors_ns: 300.0,
                    reach_ns: 40_000.0,
                },
            ],
            tenancy: TenancyReport {
                budget_bytes: 1_500,
                combined_bytes: 3_000,
                evictions: 12,
                cold_opens: 15,
                resident_bytes: 1_400,
                tenants: vec![
                    TenantBenchRow {
                        name: "alpha".into(),
                        container_bytes: 1_000,
                        cold_open_ns: 52_000.0,
                    },
                    TenantBenchRow {
                        name: "beta".into(),
                        container_bytes: 2_000,
                        cold_open_ns: 61_000.0,
                    },
                ],
            },
            resilience: ResilienceReport {
                breaker_trips: 1,
                breaker_fast_fail_ns: 250.0,
                breaker_recovered: true,
                shed_sent: 800,
                shed_busy: 600,
                drain_latency_ns: 40_000_000.0,
            },
            connections: ConnectionsReport {
                io: "epoll",
                connections: 10_000,
                threads_base: 5,
                threads_during: 5,
                threads_after: 5,
                live_sampled: 32,
                burst_queries: 10_000,
                burst_qps: 250_000.0,
            },
            versioning: VersioningReport {
                versions: 41,
                overlay_added: 40,
                overlay_removed: 0,
                patch_apply_ns: 30_000.0,
                head_neighbors_ns: 600.0,
                v0_neighbors_ns: 400.0,
                recompressed_neighbors_ns: 300.0,
                recompress_ns: 9_000_000.0,
            },
        }
    }

    #[test]
    fn derived_factors() {
        let r = sample();
        assert!((r.batch_speedup() - 3.0).abs() < 1e-9);
        assert!((r.scaling_factor() - 4.0).abs() < 1e-9);
        assert!((r.resilience.shed_rate() - 0.75).abs() < 1e-9);
        let none_sent = ResilienceReport { shed_sent: 0, shed_busy: 0, ..r.resilience };
        assert_eq!(none_sent.shed_rate(), 0.0, "no workload, no rate");
        assert!(r.connections.flat());
        let grew = ConnectionsReport { threads_during: 8, ..r.connections.clone() };
        assert!(!grew.flat(), "a thread per shard of the herd is not flat");
        let unmeasured = ConnectionsReport {
            threads_base: 0,
            threads_during: 0,
            threads_after: 0,
            ..r.connections
        };
        assert!(unmeasured.flat(), "no procfs, vacuously flat");
    }

    #[test]
    fn json_is_well_formed_and_complete() {
        let text = render_store_bench_json(&sample());
        // Balanced braces/brackets (no nesting tricks in this document).
        assert_eq!(text.matches('{').count(), text.matches('}').count());
        assert_eq!(text.matches('[').count(), text.matches(']').count());
        for key in [
            "\"schema\": 6",
            "\"bench\": \"store\"",
            "\"scale\": \"quick\"",
            "\"threads_available\": 8",
            "\"query_classes_ns\"",
            "\"out_neighbors\": 120.5",
            "\"sequential_ns\": 4000000.0",
            "\"individual_ns\": 12000000.0",
            "\"speedup\": 3.0",
            "\"thread_scaling\"",
            "\"scaling_factor\": 4.0",
            "\"backends\"",
            "\"name\": \"grepair\"",
            "\"container_bytes\": 812",
            "\"name\": \"k2\"",
            "\"reach_ns\": 40000.0",
            "\"multi_tenant\"",
            "\"budget_bytes\": 1500",
            "\"combined_bytes\": 3000",
            "\"evictions\": 12",
            "\"cold_opens\": 15",
            "\"resident_bytes\": 1400",
            "\"name\": \"alpha\"",
            "\"cold_open_ns\": 52000.0",
            "\"resilience\"",
            "\"breaker_trips\": 1",
            "\"breaker_fast_fail_ns\": 250.0",
            "\"breaker_recovered\": true",
            "\"shed_sent\": 800",
            "\"shed_busy\": 600",
            "\"shed_rate\": 0.8",
            "\"drain_latency_ms\": 40.0",
            "\"connections\"",
            "\"io\": \"epoll\"",
            "\"connections\": 10000",
            "\"threads_base\": 5",
            "\"threads_during\": 5",
            "\"threads_after\": 5",
            "\"live_sampled\": 32",
            "\"burst_queries\": 10000",
            "\"burst_qps\": 250000.0",
            "\"flat\": true",
            "\"versioning\"",
            "\"versions\": 41",
            "\"overlay_added\": 40",
            "\"overlay_removed\": 0",
            "\"patch_apply_ns\": 30000.0",
            "\"head_neighbors_ns\": 600.0",
            "\"v0_neighbors_ns\": 400.0",
            "\"recompressed_neighbors_ns\": 300.0",
            "\"recompress_ns\": 9000000.0",
            "\"overlay_tax\": 2.0",
        ] {
            assert!(text.contains(key), "missing {key} in:\n{text}");
        }
        // No trailing commas (the classic hand-rolled-JSON bug).
        assert!(!text.contains(",\n  }"), "{text}");
        assert!(!text.contains(",\n  ]"), "{text}");
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_numbers_are_rejected() {
        let mut r = sample();
        r.batch_sequential_ns = f64::NAN;
        render_store_bench_json(&r);
    }

    #[test]
    fn query_lines_round_trip_through_the_parser() {
        for q in mixed_batch(97, 200) {
            let line = query_line(&q);
            let parsed = grepair_store::parse_query(&line)
                .unwrap_or_else(|e| panic!("{line:?} must re-parse: {e}"));
            assert_eq!(parsed, q, "{line:?}");
        }
        assert_eq!(query_line(&Query::Components), "components");
        assert_eq!(query_line(&Query::DegreeExtrema), "degrees");
    }

    #[test]
    fn quick_measurement_runs_end_to_end() {
        let r = measure_store_serving(Scale::Quick);
        assert_eq!(r.scale, "quick");
        assert_eq!(r.class_ns.len(), 5);
        assert!(r.class_ns.iter().all(|&(_, ns)| ns > 0.0));
        assert!(r.batch_sequential_ns > 0.0);
        assert_eq!(r.thread_scaling.len(), SCALING_THREADS.len());
        // One row per registered backend, each fully measured.
        let names: Vec<&str> = r.backends.iter().map(|b| b.name).collect();
        assert_eq!(names, grepair_store::backend_names());
        for b in &r.backends {
            assert!(b.container_bytes > 0, "{}", b.name);
            assert!(b.bits_per_edge > 0.0, "{}", b.name);
            assert!(b.neighbors_ns > 0.0 && b.reach_ns > 0.0, "{}", b.name);
        }
        // The multi-tenant block measured real churn: the budget is below
        // the combined size, so evictions and cold reopens must show up,
        // and every tenant has a finite cold-open number.
        let t = &r.tenancy;
        assert!(t.budget_bytes < t.combined_bytes);
        assert!(t.evictions > 0, "budget never bit: {t:?}");
        assert!(t.cold_opens > 0, "{t:?}");
        assert_eq!(t.tenants.len(), 3);
        assert!(t.tenants.iter().all(|row| row.container_bytes > 0 && row.cold_open_ns > 0.0));
        // The grammar path's Fig. 13 story holds in serving form: the
        // container is far smaller than the baselines' on this graph.
        let by_name = |n: &str| r.backends.iter().find(|b| b.name == n).unwrap();
        assert!(
            by_name("grepair").container_bytes < by_name("k2").container_bytes,
            "grammar must beat k2 on the repetitive path"
        );
        // The resilience block measured real degradation: the breaker
        // tripped and recovered, the watermark shed at least one batch,
        // and the drain finished inside the default deadline.
        let res = &r.resilience;
        assert!(res.breaker_trips >= 1, "{res:?}");
        assert!(res.breaker_fast_fail_ns > 0.0, "{res:?}");
        assert!(res.breaker_recovered, "{res:?}");
        assert!(res.shed_sent > 0 && res.shed_busy > 0, "{res:?}");
        assert!(res.shed_busy <= res.shed_sent, "{res:?}");
        assert!(
            res.drain_latency_ns > 0.0 && res.drain_latency_ns < 5e9,
            "{res:?}"
        );
        // The connections block parked a real herd on a flat thread count
        // and proved the parked sockets were live sessions.
        let c = &r.connections;
        assert!(c.connections >= 8, "{c:?}");
        assert!(c.live_sampled > 0 && c.live_sampled <= c.connections, "{c:?}");
        assert!(c.burst_queries > 0 && c.burst_qps > 0.0, "{c:?}");
        if cfg!(target_os = "linux") {
            assert_eq!(c.io, "epoll");
            assert!(c.threads_base > 0, "procfs must be readable here: {c:?}");
            assert!(c.flat(), "thread count grew with the herd: {c:?}");
        }
        // The versioning block replayed a growing history through the
        // delta layer: at least one patch per later year, all adds, and
        // every latency measured.
        let v = &r.versioning;
        assert!(v.versions >= 4, "{v:?}");
        assert_eq!(v.overlay_added, v.versions - 1, "one ADD per version: {v:?}");
        assert_eq!(v.overlay_removed, 0, "{v:?}");
        assert!(v.patch_apply_ns > 0.0, "{v:?}");
        assert!(
            v.head_neighbors_ns > 0.0
                && v.v0_neighbors_ns > 0.0
                && v.recompressed_neighbors_ns > 0.0,
            "{v:?}"
        );
        assert!(v.recompress_ns > 0.0 && v.overlay_tax() > 0.0, "{v:?}");
        // The rendered form of a real measurement is also well-formed.
        let text = render_store_bench_json(&r);
        assert!(text.contains("\"schema\": 6"));
        assert!(text.contains("\"name\": \"hn\""));
        assert!(text.contains("\"multi_tenant\""));
        assert!(text.contains("\"resilience\""));
        assert!(text.contains("\"connections\""));
        assert!(text.contains("\"versioning\""));
    }
}
