//! `repro` — regenerate every table and figure of the paper's evaluation
//! (§IV) plus the query experiments of §V.
//!
//! ```sh
//! cargo run --release -p grepair-bench --bin repro -- --all
//! cargo run --release -p grepair-bench --bin repro -- --table4 --fig13
//! cargo run --release -p grepair-bench --bin repro -- --all --quick   # 4× smaller datasets
//! ```
//!
//! Absolute numbers differ from the paper (its datasets are proprietary
//! dumps; ours are structural analogs — see DESIGN.md §4, which also
//! records the expected *shapes*: who wins, by how much, where the
//! crossovers are. Those shapes are the reproduction target).
//!
//! `--queries` additionally writes `BENCH_store.json` (per-query-class ns,
//! batch speedup, thread-scaling factors for the 10k mixed batch) to the
//! working directory; run from the repo root to regenerate the checked-in
//! baseline:
//!
//! ```sh
//! cargo run --release -p grepair-bench --bin repro -- --queries
//! ```

use grepair_bench::*;
use grepair_core::GRePairConfig;
use grepair_hypergraph::order::NodeOrder;
use grepair_hypergraph::Hypergraph;
use std::process::ExitCode;
use std::time::Instant;

const USAGE: &str = "usage: repro [--all] [--quick] [SECTION]...
sections: --table1 --table2 --table3 --table4 --table5 --table6
          --fig10 --fig11 --fig12 --fig13 --fig14
          --ratios --queries --strings
no sections selects --all; --quick shrinks every dataset 4x";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(unknown) = validate_repro_flags(&args) {
        eprintln!("error: unknown flag {unknown:?}");
        eprintln!();
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }
    let has = |f: &str| args.iter().any(|a| a == f);
    let all = has("--all") || args.iter().all(|a| a == "--quick");
    let scale = if has("--quick") { Scale::Quick } else { Scale::Full };

    let t0 = Instant::now();
    if all || has("--table1") {
        table1(scale);
    }
    if all || has("--table2") {
        table2(scale);
    }
    if all || has("--table3") {
        table3(scale);
    }
    if all || has("--table4") {
        table4(scale);
    }
    if all || has("--fig10") {
        fig10(scale);
    }
    if all || has("--fig11") {
        fig11(scale);
    }
    if all || has("--fig12") {
        fig12(scale);
    }
    if all || has("--table5") {
        table5(scale);
    }
    if all || has("--table6") {
        table6(scale);
    }
    if all || has("--fig13") {
        fig13();
    }
    if all || has("--fig14") {
        fig14(scale);
    }
    if all || has("--ratios") {
        ratios(scale);
    }
    if all || has("--queries") {
        queries(scale);
    }
    if all || has("--strings") {
        strings();
    }
    eprintln!("\n[repro completed in {:?}]", t0.elapsed());
    ExitCode::SUCCESS
}

fn banner(title: &str) {
    println!("\n=== {title} ===");
}

fn stats_table(title: &str, datasets: &[NamedGraph], show_labels: bool) {
    banner(title);
    let mut header = vec!["graph".to_string(), "|V|".into(), "|E|".into()];
    if show_labels {
        header.push("|Sigma|".into());
    }
    header.push("|[~FP]|".into());
    let widths = [18, 10, 10, 8, 10];
    println!("{}", row(&header, &widths));
    for d in datasets {
        let s = dataset_stats(&d.graph);
        let mut cells = vec![d.name.to_string(), s.nodes.to_string(), s.edges.to_string()];
        if show_labels {
            cells.push(s.labels.to_string());
        }
        cells.push(s.fp_classes.to_string());
        println!("{}", row(&cells, &widths));
    }
}

/// Table I: network graph statistics.
fn table1(scale: Scale) {
    stats_table("Table I: network graphs", &network_suite(scale), false);
}

/// Table II: RDF graph statistics.
fn table2(scale: Scale) {
    stats_table("Table II: RDF graphs", &rdf_suite(scale), true);
}

/// Table III: version graph statistics.
fn table3(scale: Scale) {
    stats_table("Table III: version graphs", &version_suite(scale), true);
}

/// Table IV: bpe for maxRank 2..8 on six network graphs.
fn table4(scale: Scale) {
    banner("Table IV: maxRank sweep (bpe; * = best per row)");
    let names = [
        "Email-EuAll",
        "NotreDame",
        "CA-AstroPh",
        "CA-CondMat",
        "CA-GrQc",
        "Email-Enron",
    ];
    let suite = network_suite(scale);
    let widths = [14, 9, 9, 9, 9, 9, 9, 9];
    let mut header = vec!["graph".to_string()];
    header.extend((2..=8).map(|r| r.to_string()));
    println!("{}", row(&header, &widths));
    for name in names {
        let d = suite.iter().find(|d| d.name == name).unwrap();
        let bpes: Vec<f64> = (2..=8)
            .map(|max_rank| {
                run_grepair(&d.graph, &GRePairConfig { max_rank, ..Default::default() }).bpe
            })
            .collect();
        let best = bpes.iter().cloned().fold(f64::INFINITY, f64::min);
        let mut cells = vec![name.to_string()];
        cells.extend(bpes.iter().map(|&b| {
            if (b - best).abs() < 1e-9 {
                format!("{b:.2}*")
            } else {
                format!("{b:.2}")
            }
        }));
        println!("{}", row(&cells, &widths));
    }
}

/// Fig. 10: node order comparison on representative graphs.
fn fig10(scale: Scale) {
    banner("Fig. 10: node orders (bpe)");
    let orders = [
        ("Natural", NodeOrder::Natural),
        ("BFS", NodeOrder::Bfs),
        ("FP0", NodeOrder::Fp0),
        ("FP", NodeOrder::Fp),
        ("Random", NodeOrder::Random(13)),
    ];
    let widths = [18, 9, 9, 9, 9, 9];
    let mut header = vec!["graph".to_string()];
    header.extend(orders.iter().map(|(n, _)| n.to_string()));
    println!("{}", row(&header, &widths));

    let network = network_suite(scale);
    let rdf = rdf_suite(scale);
    let history = dblp_history(scale, 11);
    let dblp = NamedGraph {
        name: "DBLP60-70",
        family: Family::Version,
        graph: history.version_graph(10),
    };
    let mut picks: Vec<&NamedGraph> = Vec::new();
    for name in ["CA-AstroPh", "Email-EuAll", "NotreDame"] {
        picks.push(network.iter().find(|d| d.name == name).unwrap());
    }
    for name in ["SpecificProps-en", "Jamendo"] {
        picks.push(rdf.iter().find(|d| d.name == name).unwrap());
    }
    picks.push(&dblp);

    for d in picks {
        let mut cells = vec![d.name.to_string()];
        for (_, order) in orders {
            let bpe = run_grepair(&d.graph, &GRePairConfig { order, ..Default::default() }).bpe;
            cells.push(format!("{bpe:.2}"));
        }
        println!("{}", row(&cells, &widths));
    }
}

/// Fig. 11: FP equivalence classes vs compression.
fn fig11(scale: Scale) {
    banner("Fig. 11: |[~FP]|/|V| vs bpe (scatter data)");
    let widths = [18, 12, 9];
    println!("{}", row(&["graph".into(), "classes/|V|".into(), "bpe".into()], &widths));
    let mut points: Vec<(f64, f64)> = Vec::new();
    let mut suites = network_suite(scale);
    suites.extend(rdf_suite(scale));
    suites.extend(version_suite(scale));
    for d in &suites {
        let s = dataset_stats(&d.graph);
        let ratio = s.fp_classes as f64 / s.nodes.max(1) as f64;
        let bpe = run_grepair(&d.graph, &GRePairConfig::default()).bpe;
        points.push((ratio, bpe));
        println!(
            "{}",
            row(&[d.name.to_string(), format!("{ratio:.4}"), format!("{bpe:.2}")], &widths)
        );
    }
    // The paper's observation: the lower-right corner is empty — no graph
    // with few classes compresses badly.
    let max_bpe = points.iter().map(|p| p.1).fold(0.0, f64::max);
    let violations = points
        .iter()
        .filter(|(r, b)| *r < 0.05 && *b > 0.5 * max_bpe)
        .count();
    println!("lower-right corner (classes/|V| < 0.05 but bpe > half of max): {violations} graphs");
}

/// Fig. 12: network graphs, gRePair vs k2 vs LM vs HN.
fn fig12(scale: Scale) {
    banner("Fig. 12: network graphs (bpe)");
    let widths = [18, 10, 10, 10, 10];
    println!(
        "{}",
        row(
            &["graph".into(), "gRePair".into(), "k2".into(), "LM".into(), "HN".into()],
            &widths
        )
    );
    for d in network_suite(scale) {
        let gr = run_grepair(&d.graph, &GRePairConfig::default());
        let (k2, _) = run_k2(&d.graph);
        let (lm, _) = run_lm(&d.graph);
        let (hn, _) = run_hn(&d.graph);
        println!(
            "{}",
            row(
                &[
                    d.name.to_string(),
                    format!("{:.2}", gr.bpe),
                    format!("{k2:.2}"),
                    format!("{lm:.2}"),
                    format!("{hn:.2}"),
                ],
                &widths
            )
        );
    }
}

/// Table V: RDF graphs, gRePair vs k2 (sizes in KB).
fn table5(scale: Scale) {
    banner("Table V: RDF graphs (size in KB)");
    let widths = [18, 10, 10, 8];
    println!(
        "{}",
        row(&["graph".into(), "gRePair".into(), "k2".into(), "ratio".into()], &widths)
    );
    for d in rdf_suite(scale) {
        let gr = run_grepair(&d.graph, &GRePairConfig::default());
        let (_, k2_bits) = run_k2(&d.graph);
        println!(
            "{}",
            row(
                &[
                    d.name.to_string(),
                    format!("{}", gr.bits / 8192),
                    format!("{}", k2_bits / 8192),
                    format!("{:.1}x", k2_bits as f64 / gr.bits.max(1) as f64),
                ],
                &widths
            )
        );
    }
}

/// Table VI: version graphs (bpe); LM/HN only for unlabeled ones, as in the
/// paper.
fn table6(scale: Scale) {
    banner("Table VI: version graphs (bpe; '-' = labeled, method n/a)");
    let widths = [14, 10, 10, 10, 10];
    println!(
        "{}",
        row(
            &["graph".into(), "gRePair".into(), "k2".into(), "LM".into(), "HN".into()],
            &widths
        )
    );
    for d in version_suite(scale) {
        let gr = run_grepair(&d.graph, &GRePairConfig::default());
        let (k2, _) = run_k2(&d.graph);
        let (lm, hn) = if is_unlabeled(&d.graph) {
            (format!("{:.2}", run_lm(&d.graph).0), format!("{:.2}", run_hn(&d.graph).0))
        } else {
            ("-".into(), "-".into())
        };
        println!(
            "{}",
            row(
                &[d.name.to_string(), format!("{:.2}", gr.bpe), format!("{k2:.2}"), lm, hn],
                &widths
            )
        );
    }
}

/// Fig. 13: disjoint copies of the 4-node/5-edge graph, file sizes.
fn fig13() {
    banner("Fig. 13: disjoint copies of a 4-node/5-edge graph (bytes)");
    let widths = [8, 10, 10, 10];
    println!(
        "{}",
        row(&["copies".into(), "gRePair".into(), "k2".into(), "LM".into()], &widths)
    );
    let base = grepair_datasets::version::circle_with_diagonal();
    let mut copies = 8usize;
    while copies <= 4096 {
        let g = grepair_datasets::version::disjoint_copies(&base, copies);
        let gr = run_grepair(&g, &GRePairConfig::default());
        let (_, k2_bits) = run_k2(&g);
        let (_, lm_bits) = run_lm(&g);
        println!(
            "{}",
            row(
                &[
                    copies.to_string(),
                    (gr.bits / 8 + 1).to_string(),
                    (k2_bits / 8 + 1).to_string(),
                    (lm_bits / 8 + 1).to_string(),
                ],
                &widths
            )
        );
        copies *= 2;
    }
}

/// Fig. 14: growing DBLP version graph under different orders.
fn fig14(scale: Scale) {
    banner("Fig. 14: DBLP 1960..1970 version graph, bpe per order");
    let orders = [
        ("FP", NodeOrder::Fp),
        ("FP0", NodeOrder::Fp0),
        ("BFS", NodeOrder::Bfs),
        ("Natural", NodeOrder::Natural),
        ("Random", NodeOrder::Random(13)),
    ];
    let widths = [7, 9, 9, 9, 9, 9, 9, 9];
    let mut header = vec!["years".to_string()];
    header.extend(orders.iter().map(|(n, _)| n.to_string()));
    header.push("k2".into());
    header.push("|E|".into());
    println!("{}", row(&header, &widths));
    let history = dblp_history(scale, 11);
    for year in 0..=10usize {
        let g = history.version_graph(year);
        let mut cells = vec![format!("60-{}", 60 + year)];
        for (_, order) in orders {
            let bpe = run_grepair(&g, &GRePairConfig { order, ..Default::default() }).bpe;
            cells.push(format!("{bpe:.2}"));
        }
        let (k2, _) = run_k2(&g);
        cells.push(format!("{k2:.2}"));
        cells.push(g.num_edges().to_string());
        println!("{}", row(&cells, &widths));
    }
}

/// §IV-C text: average |G|/|g| compression ratio per family.
fn ratios(scale: Scale) {
    banner("Compression ratio |G|/|g| per family (paper: 68% / 35% / 24%)");
    let families: [(&str, Vec<NamedGraph>); 3] = [
        ("network", network_suite(scale)),
        ("RDF", rdf_suite(scale)),
        ("version", version_suite(scale)),
    ];
    for (name, suite) in families {
        let mut total = 0.0;
        for d in &suite {
            let gr = run_grepair(&d.graph, &GRePairConfig::default());
            total += gr.compressed.stats.ratio();
        }
        println!("{name:>8}: {:.0}%", 100.0 * total / suite.len() as f64);
    }
}

/// §V (extension): query timings over the grammar vs the decompressed
/// graph, plus the serving path (one loaded `GraphStore` answering the same
/// requests as a batch).
fn queries(scale: Scale) {
    banner("Queries (SS V, implemented here): grammar vs decompressed graph");
    // The long-path case: grammar is logarithmic in the graph.
    let reps = match scale {
        Scale::Full => 16_384u32,
        Scale::Quick => 2_048,
    };
    let (path, _) = Hypergraph::from_simple_edges(
        (2 * reps + 1) as usize,
        (0..reps).flat_map(|i| [(2 * i, 0u32, 2 * i + 1), (2 * i + 1, 1u32, 2 * i + 2)]),
    );
    let history = dblp_history(scale, 11);
    let cases = [("path(2^n)", path), ("DBLP60-70", history.version_graph(10))];
    let widths = [12, 9, 9, 14, 14, 14, 13, 13];
    println!(
        "{}",
        row(
            &[
                "graph".into(),
                "|g|".into(),
                "|G|".into(),
                "reach(gram)".into(),
                "reach(BFS)".into(),
                "reach(store)".into(),
                "cc(gram)".into(),
                "cc(graph)".into(),
            ],
            &widths
        )
    );
    for (name, g) in cases {
        let out = grepair_core::compress(&g, &GRePairConfig::default());
        let derived = out.grammar.derive();
        let reach = grepair_queries::ReachIndex::new(&out.grammar);
        let n = derived.num_nodes() as u64;
        let pairs: Vec<(u64, u64)> =
            (0..200).map(|i| ((i * 7919) % n, (i * 104_729 + 13) % n)).collect();

        let t = Instant::now();
        let a: Vec<bool> = pairs.iter().map(|&(s, t)| reach.reachable(s, t)).collect();
        let grammar_reach = t.elapsed();
        let t = Instant::now();
        let b: Vec<bool> = pairs
            .iter()
            .map(|&(s, t)| grepair_hypergraph::traverse::reachable(&derived, s as u32, t as u32))
            .collect();
        let bfs_reach = t.elapsed();
        assert_eq!(a, b, "grammar and BFS reachability disagree on {name}");

        // The serving path: the same requests through one GraphStore batch
        // (duplicate sources share forward closures).
        let store = grepair_store::GraphStore::from_grammar(out.grammar.clone())
            .expect("compressed grammar is valid");
        let batch: Vec<grepair_store::Query> = pairs
            .iter()
            .map(|&(s, t)| grepair_store::Query::Reach { s, t })
            .collect();
        let t = Instant::now();
        let answers = store.query_batch(&batch);
        let store_reach = t.elapsed();
        let c: Vec<bool> = answers
            .into_iter()
            .map(|r| match *r.expect("in-range reach query") {
                grepair_store::QueryAnswer::Bool(b) => b,
                ref other => panic!("reach answered {other:?}"),
            })
            .collect();
        assert_eq!(a, c, "store batch reachability disagrees on {name}");

        let t = Instant::now();
        let cc_g = grepair_queries::speedup::connected_components(&out.grammar);
        let grammar_cc = t.elapsed();
        let t = Instant::now();
        let (_, cc_d) = grepair_hypergraph::traverse::connected_components(&derived);
        let graph_cc = t.elapsed();
        assert_eq!(cc_g, cc_d as u64);

        println!(
            "{}",
            row(
                &[
                    name.to_string(),
                    g.total_size().to_string(),
                    out.grammar.size().to_string(),
                    format!("{grammar_reach:.1?}"),
                    format!("{bfs_reach:.1?}"),
                    format!("{store_reach:.1?}"),
                    format!("{grammar_cc:.1?}"),
                    format!("{graph_cc:.1?}"),
                ],
                &widths
            )
        );
    }

    // The machine-readable serving trajectory: per-query-class ns, batch
    // speedup, and thread scaling for the 10k mixed batch, written to
    // BENCH_store.json in the working directory (the repo root when run as
    // documented) so CI can check it and PRs can diff it.
    let report = grepair_bench::serving::measure_store_serving(scale);
    let json = grepair_bench::serving::render_store_bench_json(&report);
    let path = "BENCH_store.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!(
            "\nwrote {path} (scale={}, {} threads available, batch speedup {:.2}x, \
             thread-scaling factor {:.2}x)",
            report.scale,
            report.threads_available,
            report.batch_speedup(),
            report.scaling_factor(),
        ),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}

/// Conclusion claim: gRePair on string-shaped graphs ≈ string RePair.
fn strings() {
    banner("Strings-as-graphs: gRePair vs string RePair (conclusion claim)");
    // The string (abc)^n as a path graph with labels a, b, c.
    let reps = 2_000u32;
    let triples = (0..reps).flat_map(|i| {
        let b = 3 * i;
        [(b, 0u32, b + 1), (b + 1, 1, b + 2), (b + 2, 2, b + 3)]
    });
    let (g, _) = Hypergraph::from_simple_edges((3 * reps + 1) as usize, triples);
    let gr = run_grepair(&g, &GRePairConfig::default());
    let seq: Vec<u32> = (0..3 * reps).map(|i| i % 3).collect();
    let sg = grepair_baselines::repair_strings::repair(&seq, 3);
    println!(
        "gRePair grammar: {} rules, {} bits serialized",
        gr.compressed.grammar.num_nonterminals(),
        gr.bits
    );
    println!(
        "string RePair:   {} rules, {} bits estimated",
        sg.rules.len(),
        sg.size_bits()
    );
    println!(
        "rule-count ratio {:.2} (the paper's claim: 'similar compression ratios')",
        gr.compressed.grammar.num_nonterminals() as f64 / sg.rules.len().max(1) as f64
    );
}
