//! `serve-probe` — the wire-protocol client for a live `grepair-server`
//! (or `grepair store serve`): CI's byte-identity check and a
//! client-driven throughput probe.
//!
//! ```text
//! serve-probe <addr> <queries.txt>     # stream a query file, print replies to stdout
//! serve-probe <addr> --throughput N    # generate the bench's skewed mixed workload
//! ```
//!
//! File mode writes exactly one reply line per request line to stdout, so
//! `diff <(serve-probe ADDR q.txt) <(grepair store serve-file g.g2g q.txt)`
//! is the protocol's equivalence oracle. Throughput mode asks the server
//! `INFO` for its node count, generates `N` queries with
//! [`grepair_bench::serving::mixed_batch`] (the same skewed-popularity
//! workload `BENCH_store.json` measures in-process), and reports
//! client-observed queries/second to stderr.

use std::io::Write;
use std::process::ExitCode;

use grepair_bench::serving::{mixed_batch, probe_server, query_line};

const USAGE: &str = "usage:
  serve-probe <addr> <queries.txt>      stream a query file, replies to stdout
  serve-probe <addr> --throughput <N>   drive N generated mixed queries, report q/s";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let addr = args.first().ok_or("missing server address")?;
    match args.get(1).map(String::as_str) {
        Some("--throughput") => {
            let count: u64 = args
                .get(2)
                .ok_or("missing query count")?
                .parse()
                .map_err(|e| format!("bad query count: {e}"))?;
            if let Some(extra) = args.get(3) {
                return Err(format!("unexpected argument {extra:?}"));
            }
            throughput(addr, count)
        }
        Some(path) => {
            if let Some(extra) = args.get(2) {
                return Err(format!("unexpected argument {extra:?}"));
            }
            stream_file(addr, path)
        }
        None => Err("missing queries file or --throughput".into()),
    }
}

/// File mode: replies go to stdout byte-for-byte, like serve-file's.
fn stream_file(addr: &str, path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let lines: Vec<String> = text.lines().map(str::to_string).collect();
    let report = probe_server(addr, &lines).map_err(|e| format!("{addr}: {e}"))?;
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    for answer in &report.answers {
        writeln!(out, "{answer}").map_err(|e| format!("stdout: {e}"))?;
    }
    out.flush().map_err(|e| format!("stdout: {e}"))?;
    eprintln!(
        "probed {} queries ({} errors) against {addr}: {:.1} q/s",
        report.sent,
        report.errors,
        report.throughput_qps()
    );
    if report.answers.len() != report.sent {
        return Err(format!(
            "server answered {} of {} requests — connection cut short?",
            report.answers.len(),
            report.sent
        ));
    }
    Ok(())
}

/// Throughput mode: learn the node count from `INFO`, then push the
/// bench's skewed mixed workload through the socket.
fn throughput(addr: &str, count: u64) -> Result<(), String> {
    let info = probe_server(addr, &["INFO".to_string()]).map_err(|e| format!("{addr}: {e}"))?;
    let info_line = info.answers.first().ok_or("server sent no INFO reply")?;
    let nodes: u64 = info_line
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix("nodes="))
        .ok_or_else(|| format!("unparsable INFO reply {info_line:?}"))?
        .parse()
        .map_err(|e| format!("unparsable node count in {info_line:?}: {e}"))?;
    if nodes == 0 {
        return Err("server is serving an empty graph".into());
    }
    let lines: Vec<String> = mixed_batch(nodes, count).iter().map(query_line).collect();
    let report = probe_server(addr, &lines).map_err(|e| format!("{addr}: {e}"))?;
    eprintln!("{info_line}");
    eprintln!(
        "throughput: {} queries in {:.1} ms -> {:.1} q/s ({} errors)",
        report.sent,
        report.elapsed_ns / 1e6,
        report.throughput_qps(),
        report.errors
    );
    if report.answers.len() != report.sent {
        return Err(format!(
            "server answered {} of {} requests — connection cut short?",
            report.answers.len(),
            report.sent
        ));
    }
    Ok(())
}
