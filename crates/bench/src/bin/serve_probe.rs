//! `serve-probe` — the wire-protocol client for a live `grepair-server`
//! (or `grepair store serve`): CI's byte-identity check and a
//! client-driven throughput probe.
//!
//! ```text
//! serve-probe <addr> <queries.txt> [--namespace NAME]   # stream a query file, replies to stdout
//! serve-probe <addr> --throughput N [--namespace NAME]  # generate the skewed mixed workload
//! ```
//!
//! File mode writes exactly one reply line per request line to stdout, so
//! `diff <(serve-probe ADDR q.txt) <(grepair store serve-file g.g2g q.txt)`
//! is the protocol's equivalence oracle. Throughput mode asks the server
//! `INFO` for its node count, generates `N` queries with
//! [`grepair_bench::serving::mixed_batch`] (the same skewed-popularity
//! workload `BENCH_store.json` measures in-process), and reports
//! client-observed queries/second to stderr.
//!
//! `--namespace NAME` targets one tenant of a multi-tenant server
//! (DESIGN.md §8): every query line is sent with a `NAME:` prefix (admin
//! lines go bare — admin verbs take no prefix), and throughput mode reads
//! `INFO` through `USE NAME` so the node count is the tenant's own. CI's
//! cross-namespace byte-identity diff is this flag against a per-tenant
//! `store serve-file` run.

use std::io::Write;
use std::process::ExitCode;

use grepair_bench::serving::{mixed_batch, probe_server, query_line};

const USAGE: &str = "usage:
  serve-probe <addr> <queries.txt> [--namespace NAME]     stream a query file, replies to stdout
  serve-probe <addr> --throughput <N> [--namespace NAME]  drive N generated mixed queries, report q/s

  --namespace  prefix every query line with NAME: (admin lines go bare) to
               target one tenant of a multi-tenant server";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    // Split off the one optional flag so the positional grammar below
    // stays simple.
    let mut namespace = None;
    let mut rest = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--namespace" {
            let name = it.next().ok_or("--namespace needs a value")?;
            namespace = Some(name.clone());
        } else {
            rest.push(a.clone());
        }
    }
    let addr = rest.first().ok_or("missing server address")?;
    match rest.get(1).map(String::as_str) {
        Some("--throughput") => {
            let count: u64 = rest
                .get(2)
                .ok_or("missing query count")?
                .parse()
                .map_err(|e| format!("bad query count: {e}"))?;
            if let Some(extra) = rest.get(3) {
                return Err(format!("unexpected argument {extra:?}"));
            }
            throughput(addr, count, namespace.as_deref())
        }
        Some(path) => {
            if let Some(extra) = rest.get(2) {
                return Err(format!("unexpected argument {extra:?}"));
            }
            stream_file(addr, path, namespace.as_deref())
        }
        None => Err("missing queries file or --throughput".into()),
    }
}

/// Is this request line an admin command? Admin verbs are upper-case and
/// take no namespace prefix (DESIGN.md §8), so `--namespace` must leave
/// them bare.
fn is_admin_line(line: &str) -> bool {
    matches!(
        line.split_whitespace().next(),
        Some("PING" | "INFO" | "STATS" | "USE" | "ATTACH" | "DETACH" | "LIST" | "RELOAD" | "QUIT")
    )
}

/// Apply the `--namespace` prefix to one request line; blank lines,
/// comments, and admin lines pass through untouched.
fn prefixed(line: &str, namespace: Option<&str>) -> String {
    let trimmed = line.trim();
    match namespace {
        Some(ns) if !trimmed.is_empty() && !trimmed.starts_with('#') && !is_admin_line(line) => {
            format!("{ns}:{line}")
        }
        _ => line.to_string(),
    }
}

/// File mode: replies go to stdout byte-for-byte, like serve-file's.
fn stream_file(addr: &str, path: &str, namespace: Option<&str>) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let lines: Vec<String> = text.lines().map(|l| prefixed(l, namespace)).collect();
    let report = probe_server(addr, &lines).map_err(|e| format!("{addr}: {e}"))?;
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    for answer in &report.answers {
        writeln!(out, "{answer}").map_err(|e| format!("stdout: {e}"))?;
    }
    out.flush().map_err(|e| format!("stdout: {e}"))?;
    eprintln!(
        "probed {} queries ({} errors) against {addr}: {:.1} q/s",
        report.sent,
        report.errors,
        report.throughput_qps()
    );
    if report.answers.len() != report.sent {
        return Err(format!(
            "server answered {} of {} requests — connection cut short?",
            report.answers.len(),
            report.sent
        ));
    }
    Ok(())
}

/// Throughput mode: learn the node count from `INFO` (through `USE` when
/// a tenant is targeted), then push the bench's skewed mixed workload
/// through the socket.
fn throughput(addr: &str, count: u64, namespace: Option<&str>) -> Result<(), String> {
    let preamble: Vec<String> = match namespace {
        Some(ns) => vec![format!("USE {ns}"), "INFO".to_string()],
        None => vec!["INFO".to_string()],
    };
    let info = probe_server(addr, &preamble).map_err(|e| format!("{addr}: {e}"))?;
    let info_line = info.answers.last().ok_or("server sent no INFO reply")?;
    if let Some(first) = info.answers.first() {
        if first.starts_with("error: ") {
            return Err(format!("server rejected the probe preamble: {first}"));
        }
    }
    let nodes: u64 = info_line
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix("nodes="))
        .ok_or_else(|| format!("unparsable INFO reply {info_line:?}"))?
        .parse()
        .map_err(|e| format!("unparsable node count in {info_line:?}: {e}"))?;
    if nodes == 0 {
        return Err("server is serving an empty graph".into());
    }
    let lines: Vec<String> = mixed_batch(nodes, count)
        .iter()
        .map(|q| prefixed(&query_line(q), namespace))
        .collect();
    let report = probe_server(addr, &lines).map_err(|e| format!("{addr}: {e}"))?;
    eprintln!("{info_line}");
    eprintln!(
        "throughput: {} queries in {:.1} ms -> {:.1} q/s ({} errors)",
        report.sent,
        report.elapsed_ns / 1e6,
        report.throughput_qps(),
        report.errors
    );
    if report.answers.len() != report.sent {
        return Err(format!(
            "server answered {} of {} requests — connection cut short?",
            report.answers.len(),
            report.sent
        ));
    }
    Ok(())
}
