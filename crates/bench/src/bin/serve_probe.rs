//! `serve-probe` — the wire-protocol client for a live `grepair-server`
//! (or `grepair store serve`): CI's byte-identity check and a
//! client-driven throughput probe.
//!
//! ```text
//! serve-probe <addr> <queries.txt> [--namespace NAME]   # stream a query file, replies to stdout
//! serve-probe <addr> --throughput N [--namespace NAME]  # generate the skewed mixed workload
//! ```
//!
//! File mode writes exactly one reply line per request line to stdout, so
//! `diff <(serve-probe ADDR q.txt) <(grepair store serve-file g.g2g q.txt)`
//! is the protocol's equivalence oracle. Throughput mode asks the server
//! `INFO` for its node count, generates `N` queries with
//! [`grepair_bench::serving::mixed_batch`] (the same skewed-popularity
//! workload `BENCH_store.json` measures in-process), and reports
//! client-observed queries/second to stderr.
//!
//! `--namespace NAME` targets one tenant of a multi-tenant server
//! (DESIGN.md §8): every query line is sent with a `NAME:` prefix (admin
//! lines go bare — admin verbs take no prefix), and throughput mode reads
//! `INFO` through `USE NAME` so the node count is the tenant's own. CI's
//! cross-namespace byte-identity diff is this flag against a per-tenant
//! `store serve-file` run.

use std::io::Write;
use std::process::ExitCode;

use grepair_bench::serving::{mixed_batch, probe_server, query_line};

const USAGE: &str = "usage:
  serve-probe <addr> <queries.txt> [--namespace NAME]     stream a query file, replies to stdout
  serve-probe <addr> --throughput <N> [--namespace NAME]  drive N generated mixed queries, report q/s
  serve-probe <addr> --chaos-report <N> [--namespace NAME]
               drive N mixed queries through concurrent fault-tolerant
               connections against a (possibly faulted) server, collect the
               degradation numbers (busy sheds, error lines, dead
               connections, breaker health from STATS), then SHUTDOWN the
               server and time the drain; a JSON report goes to stdout.
               Destructive: the probe ends the server.

  serve-probe <addr> --connections <N> [--threads-of PID]
               park N idle connections, assert they are all live sessions
               (PING sample), drive a throughput burst on a fresh
               connection while they stay parked, and — when --threads-of
               names the server process — assert its thread count stayed
               flat (the epoll front end's contract, DESIGN.md §11); a
               JSON report goes to stdout.

  --namespace  prefix every query line with NAME: (admin lines go bare) to
               target one tenant of a multi-tenant server
  --threads-of read /proc/PID/status Threads: around the connection soak
               and fail unless the count stays flat (linux only)";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    // Split off the one optional flag so the positional grammar below
    // stays simple.
    let mut namespace = None;
    let mut threads_of = None;
    let mut rest = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--namespace" {
            let name = it.next().ok_or("--namespace needs a value")?;
            namespace = Some(name.clone());
        } else if a == "--threads-of" {
            let pid: u32 = it
                .next()
                .ok_or("--threads-of needs a PID")?
                .parse()
                .map_err(|e| format!("bad --threads-of PID: {e}"))?;
            threads_of = Some(pid);
        } else {
            rest.push(a.clone());
        }
    }
    let addr = rest.first().ok_or("missing server address")?;
    match rest.get(1).map(String::as_str) {
        Some("--throughput") => {
            let count: u64 = rest
                .get(2)
                .ok_or("missing query count")?
                .parse()
                .map_err(|e| format!("bad query count: {e}"))?;
            if let Some(extra) = rest.get(3) {
                return Err(format!("unexpected argument {extra:?}"));
            }
            throughput(addr, count, namespace.as_deref())
        }
        Some("--connections") => {
            let count: usize = rest
                .get(2)
                .ok_or("missing connection count")?
                .parse()
                .map_err(|e| format!("bad connection count: {e}"))?;
            if let Some(extra) = rest.get(3) {
                return Err(format!("unexpected argument {extra:?}"));
            }
            connections(addr, count, threads_of)
        }
        Some("--chaos-report") => {
            let count: u64 = rest
                .get(2)
                .ok_or("missing query count")?
                .parse()
                .map_err(|e| format!("bad query count: {e}"))?;
            if let Some(extra) = rest.get(3) {
                return Err(format!("unexpected argument {extra:?}"));
            }
            chaos_report(addr, count, namespace.as_deref())
        }
        Some(path) => {
            if let Some(extra) = rest.get(2) {
                return Err(format!("unexpected argument {extra:?}"));
            }
            stream_file(addr, path, namespace.as_deref())
        }
        None => Err("missing queries file or --throughput".into()),
    }
}

/// Is this request line an admin command? Admin verbs are upper-case and
/// take no namespace prefix (DESIGN.md §8), so `--namespace` must leave
/// them bare.
fn is_admin_line(line: &str) -> bool {
    matches!(
        line.split_whitespace().next(),
        Some(
            "PING" | "INFO" | "STATS" | "USE" | "ATTACH" | "DETACH" | "LIST" | "RELOAD"
                | "FAULTS" | "SHUTDOWN" | "QUIT"
        )
    )
}

/// Apply the `--namespace` prefix to one request line; blank lines,
/// comments, and admin lines pass through untouched.
fn prefixed(line: &str, namespace: Option<&str>) -> String {
    let trimmed = line.trim();
    match namespace {
        Some(ns) if !trimmed.is_empty() && !trimmed.starts_with('#') && !is_admin_line(line) => {
            format!("{ns}:{line}")
        }
        _ => line.to_string(),
    }
}

/// File mode: replies go to stdout byte-for-byte, like serve-file's.
fn stream_file(addr: &str, path: &str, namespace: Option<&str>) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let lines: Vec<String> = text.lines().map(|l| prefixed(l, namespace)).collect();
    let report = probe_server(addr, &lines).map_err(|e| format!("{addr}: {e}"))?;
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    for answer in &report.answers {
        writeln!(out, "{answer}").map_err(|e| format!("stdout: {e}"))?;
    }
    out.flush().map_err(|e| format!("stdout: {e}"))?;
    eprintln!(
        "probed {} queries ({} errors) against {addr}: {:.1} q/s",
        report.sent,
        report.errors,
        report.throughput_qps()
    );
    if report.answers.len() != report.sent {
        return Err(format!(
            "server answered {} of {} requests — connection cut short?",
            report.answers.len(),
            report.sent
        ));
    }
    Ok(())
}

/// One fault-tolerant pipelined connection: send everything, half-close,
/// salvage whatever *complete* reply lines come back. A connection the
/// server kills mid-stream (injected session faults, DESIGN.md §10) is the
/// chaos working as designed, not a probe error — it reports `died = true`
/// with however many whole lines it did get; a torn trailing fragment
/// without `\n` is discarded.
fn salvage(addr: &str, lines: &[String]) -> (Vec<String>, bool) {
    use std::io::Read;
    use std::net::{Shutdown, TcpStream};

    let mut stream = match TcpStream::connect(addr) {
        Ok(s) => s,
        Err(_) => return (Vec::new(), true),
    };
    let payload: String = lines.iter().map(|l| format!("{l}\n")).collect();
    let sent_ok = stream.write_all(payload.as_bytes()).is_ok();
    let _ = stream.shutdown(Shutdown::Write);
    let mut raw = Vec::new();
    let read_ok = stream.read_to_end(&mut raw).is_ok();
    let text = String::from_utf8_lossy(&raw);
    let torn = !text.is_empty() && !text.ends_with('\n');
    let mut replies: Vec<String> = text.lines().map(str::to_string).collect();
    if torn {
        replies.pop();
    }
    let died = !sent_ok || !read_ok || torn || replies.len() < lines.len();
    (replies, died)
}

/// One admin request, retried a few times — a fault schedule can kill the
/// health probe's own connection, so ask again before giving up.
fn health_line(addr: &str, request: &str) -> Option<String> {
    for _ in 0..5 {
        let (replies, _) = salvage(addr, std::slice::from_ref(&request.to_string()));
        if let Some(line) = replies.into_iter().next() {
            return Some(line);
        }
    }
    None
}

/// Extract `key=<value>` from a space-separated reply line.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    line.split_whitespace().find_map(|kv| kv.strip_prefix(key))
}

/// Render an optional reply line as a JSON string or `null`. Rust's
/// `{:?}` escaping is JSON-compatible for the protocol's ASCII replies.
fn json_opt(line: &Option<String>) -> String {
    match line {
        Some(l) => format!("{l:?}"),
        None => "null".into(),
    }
}

/// Chaos-report mode (DESIGN.md §10): drive a possibly-faulted server with
/// the mixed workload over concurrent fault-tolerant connections, collect
/// the degradation numbers (`busy` sheds, error lines, killed
/// connections, breaker health out of `STATS`), then `SHUTDOWN` the server
/// and time the drain until its listener is really gone. Destructive by
/// design — CI runs it as the final step against a scratch server.
fn chaos_report(addr: &str, count: u64, namespace: Option<&str>) -> Result<(), String> {
    let stats_target = namespace.unwrap_or("default");
    // Node count through INFO; if even INFO cannot survive the schedule,
    // fall back to a single-node workload (ids are still valid requests).
    let nodes = health_line(addr, "INFO")
        .and_then(|info| field(&info, "nodes=").and_then(|v| v.parse::<u64>().ok()))
        .unwrap_or(1);
    let lines: Vec<String> = mixed_batch(nodes.max(1), count)
        .iter()
        .map(|q| prefixed(&query_line(q), namespace))
        .collect();

    // Fan the workload over four concurrent fault-tolerant connections.
    let chunk = lines.len().div_ceil(4).max(1);
    let t = std::time::Instant::now();
    let (mut answered, mut busy, mut errors, mut dead_connections) = (0u64, 0u64, 0u64, 0u64);
    std::thread::scope(|s| {
        let handles: Vec<_> =
            lines.chunks(chunk).map(|part| s.spawn(move || salvage(addr, part))).collect();
        for h in handles {
            let (replies, died) = h.join().expect("chaos client thread");
            answered += replies.len() as u64;
            busy += replies.iter().filter(|r| *r == "busy").count() as u64;
            errors += replies.iter().filter(|r| r.starts_with("error: ")).count() as u64;
            dead_connections += u64::from(died);
        }
    });
    let elapsed_ms = t.elapsed().as_nanos() as f64 / 1e6;
    let shed_rate = busy as f64 / answered.max(1) as f64;

    // Health after the storm: the fault table and the target namespace's
    // breaker counters (best effort — faults can kill these probes too).
    let faults = health_line(addr, "FAULTS");
    let stats = health_line(addr, &format!("STATS {stats_target}"));
    let counter = |key: &str| -> u64 {
        stats
            .as_deref()
            .and_then(|s| field(s, key))
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    };
    let open_failures = counter("open_failures=");
    let reload_failures = counter("reload_failures=");
    let breaker_trips = counter("breaker_trips=");
    let breaker_open = stats
        .as_deref()
        .and_then(|s| field(s, "breaker_open="))
        .is_some_and(|v| v == "true");

    // Drain: SHUTDOWN, then poll until the listener is really gone. The
    // `draining` ack may itself be killed by a lingering session fault, so
    // EOF without it still counts as "sent".
    let t = std::time::Instant::now();
    let (replies, _) = salvage(addr, &["SHUTDOWN".to_string()]);
    let shutdown_acknowledged = replies.first().is_some_and(|r| r == "draining");
    let mut drained = false;
    for _ in 0..400 {
        if std::net::TcpStream::connect(addr).is_err() {
            drained = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    let drain_latency_ms = t.elapsed().as_nanos() as f64 / 1e6;

    let mut out = String::new();
    out.push_str("{\n  \"chaos_report\": {\n");
    out.push_str(&format!("    \"sent\": {},\n", lines.len()));
    out.push_str(&format!("    \"answered\": {answered},\n"));
    out.push_str(&format!("    \"busy\": {busy},\n"));
    out.push_str(&format!("    \"errors\": {errors},\n"));
    out.push_str(&format!("    \"dead_connections\": {dead_connections},\n"));
    out.push_str(&format!("    \"shed_rate\": {shed_rate:.4},\n"));
    out.push_str(&format!("    \"elapsed_ms\": {elapsed_ms:.1},\n"));
    out.push_str(&format!("    \"faults\": {},\n", json_opt(&faults)));
    out.push_str(&format!("    \"stats\": {},\n", json_opt(&stats)));
    out.push_str(&format!("    \"open_failures\": {open_failures},\n"));
    out.push_str(&format!("    \"reload_failures\": {reload_failures},\n"));
    out.push_str(&format!("    \"breaker_trips\": {breaker_trips},\n"));
    out.push_str(&format!("    \"breaker_open\": {breaker_open},\n"));
    out.push_str(&format!("    \"shutdown_acknowledged\": {shutdown_acknowledged},\n"));
    out.push_str(&format!("    \"drained\": {drained},\n"));
    out.push_str(&format!("    \"drain_latency_ms\": {drain_latency_ms:.1}\n"));
    out.push_str("  }\n}\n");
    print!("{out}");
    std::io::stdout().flush().map_err(|e| format!("stdout: {e}"))?;
    eprintln!(
        "chaos report: {answered}/{} answered, {busy} busy, {errors} errors, \
         {dead_connections} dead connections, drain {drain_latency_ms:.1} ms",
        lines.len()
    );
    if !drained {
        return Err("server did not drain within 10 s of SHUTDOWN".into());
    }
    Ok(())
}

/// `Threads:` from `/proc/PID/status` — the server's thread count, when
/// the caller told us its PID and we are on Linux.
fn thread_count_of(pid: u32) -> Option<u64> {
    let status = std::fs::read_to_string(format!("/proc/{pid}/status")).ok()?;
    status.lines().find_map(|l| l.strip_prefix("Threads:")).and_then(|v| v.trim().parse().ok())
}

/// Render an optional count as JSON.
fn json_count(n: &Option<u64>) -> String {
    match n {
        Some(n) => n.to_string(),
        None => "null".into(),
    }
}

/// Connection-scale mode (DESIGN.md §11): park `count` idle connections,
/// verify a sample of them are live sessions (`PING` → `pong`), run a
/// throughput burst on a fresh connection while they stay parked, and —
/// given `--threads-of` — assert the server's thread count stayed flat
/// across the soak. This is the wire-level proof of the epoll front end's
/// scaling contract: idle clients cost a buffer, not a thread.
fn connections(addr: &str, count: usize, threads_of: Option<u32>) -> Result<(), String> {
    use std::io::{BufRead, BufReader, Read};
    use std::net::TcpStream;

    if count == 0 {
        return Err("--connections needs at least 1 connection".into());
    }
    // Warm the server's lazily-spawned threads (pool workers, drain
    // watcher) and learn the node count before taking the baseline.
    let info = probe_server(addr, &["INFO".to_string()]).map_err(|e| format!("{addr}: {e}"))?;
    let info_line = info.answers.first().ok_or("server sent no INFO reply")?.clone();
    let nodes: u64 = info_line
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix("nodes="))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let threads_base = threads_of.and_then(thread_count_of);
    if threads_of.is_some() && threads_base.is_none() {
        return Err("--threads-of: cannot read Threads: from /proc (linux only, live PID)".into());
    }

    // Park the idle herd.
    let t = std::time::Instant::now();
    let mut idle: Vec<TcpStream> = Vec::with_capacity(count);
    for i in 0..count {
        match TcpStream::connect(addr) {
            Ok(stream) => idle.push(stream),
            Err(e) => {
                return Err(format!(
                    "connect {i}/{count} failed: {e} (fd limit too low? raise ulimit -n)"
                ))
            }
        }
    }
    let connect_ms = t.elapsed().as_nanos() as f64 / 1e6;
    // Let the reactor accept the tail of the burst before measuring.
    std::thread::sleep(std::time::Duration::from_millis(200));
    let threads_during = threads_of.and_then(thread_count_of);

    // Liveness sample: parked connections must be real sessions, not just
    // accepted fds. Spread the sample across the herd.
    let sample = 32usize.min(count);
    let mut live = 0usize;
    for s in 0..sample {
        let i = s * count / sample;
        let stream = &mut idle[i];
        stream
            .write_all(b"PING\n")
            .map_err(|e| format!("conn {i}: ping send failed: {e}"))?;
        let mut reader = BufReader::new(
            stream.try_clone().map_err(|e| format!("conn {i}: clone failed: {e}"))?,
        );
        let mut line = String::new();
        reader.read_line(&mut line).map_err(|e| format!("conn {i}: ping reply failed: {e}"))?;
        if line != "pong\n" {
            return Err(format!("conn {i}: expected pong, got {line:?}"));
        }
        live += 1;
    }

    // Throughput burst on a fresh connection while the herd stays parked:
    // the reactor must keep serving at full speed with `count` registered
    // sockets it is not reading from.
    let burst = 2_000u64;
    let lines: Vec<String> = mixed_batch(nodes.max(1), burst).iter().map(query_line).collect();
    let report = probe_server(addr, &lines).map_err(|e| format!("{addr}: {e}"))?;
    if report.answers.len() != report.sent {
        return Err(format!(
            "burst answered {} of {} requests — connection cut short?",
            report.answers.len(),
            report.sent
        ));
    }
    let threads_after = threads_of.and_then(thread_count_of);

    // Flat means: no per-connection threads appeared. The +2 headroom
    // absorbs incidental runtime threads, nothing proportional to `count`.
    let flat = match (threads_base, threads_during, threads_after) {
        (Some(base), Some(during), Some(after)) => during <= base + 2 && after <= base + 2,
        _ => true, // not measured; the JSON carries nulls
    };
    // Drop the herd politely so the server's close path, not process exit,
    // reaps them.
    for mut stream in idle {
        let _ = stream.write_all(b"QUIT\n");
        let mut sink = Vec::new();
        let _ = stream.take(64).read_to_end(&mut sink);
    }

    let mut out = String::new();
    out.push_str("{\n  \"connections_probe\": {\n");
    out.push_str(&format!("    \"connections\": {count},\n"));
    out.push_str(&format!("    \"connect_ms\": {connect_ms:.1},\n"));
    out.push_str(&format!("    \"live_sampled\": {live},\n"));
    out.push_str(&format!("    \"threads_base\": {},\n", json_count(&threads_base)));
    out.push_str(&format!("    \"threads_during\": {},\n", json_count(&threads_during)));
    out.push_str(&format!("    \"threads_after\": {},\n", json_count(&threads_after)));
    out.push_str(&format!("    \"burst_queries\": {},\n", report.sent));
    out.push_str(&format!("    \"burst_qps\": {:.1},\n", report.throughput_qps()));
    out.push_str(&format!("    \"flat\": {flat}\n"));
    out.push_str("  }\n}\n");
    print!("{out}");
    std::io::stdout().flush().map_err(|e| format!("stdout: {e}"))?;
    eprintln!(
        "connections: {count} parked in {connect_ms:.1} ms, {live}/{sample} sampled live, \
         burst {:.1} q/s, threads {}/{}/{}",
        report.throughput_qps(),
        json_count(&threads_base),
        json_count(&threads_during),
        json_count(&threads_after),
    );
    if !flat {
        return Err(format!(
            "thread count not flat across {count} connections: base={} during={} after={}",
            json_count(&threads_base),
            json_count(&threads_during),
            json_count(&threads_after),
        ));
    }
    Ok(())
}

/// Throughput mode: learn the node count from `INFO` (through `USE` when
/// a tenant is targeted), then push the bench's skewed mixed workload
/// through the socket.
fn throughput(addr: &str, count: u64, namespace: Option<&str>) -> Result<(), String> {
    let preamble: Vec<String> = match namespace {
        Some(ns) => vec![format!("USE {ns}"), "INFO".to_string()],
        None => vec!["INFO".to_string()],
    };
    let info = probe_server(addr, &preamble).map_err(|e| format!("{addr}: {e}"))?;
    let info_line = info.answers.last().ok_or("server sent no INFO reply")?;
    if let Some(first) = info.answers.first() {
        if first.starts_with("error: ") {
            return Err(format!("server rejected the probe preamble: {first}"));
        }
    }
    let nodes: u64 = info_line
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix("nodes="))
        .ok_or_else(|| format!("unparsable INFO reply {info_line:?}"))?
        .parse()
        .map_err(|e| format!("unparsable node count in {info_line:?}: {e}"))?;
    if nodes == 0 {
        return Err("server is serving an empty graph".into());
    }
    let lines: Vec<String> = mixed_batch(nodes, count)
        .iter()
        .map(|q| prefixed(&query_line(q), namespace))
        .collect();
    let report = probe_server(addr, &lines).map_err(|e| format!("{addr}: {e}"))?;
    eprintln!("{info_line}");
    eprintln!(
        "throughput: {} queries in {:.1} ms -> {:.1} q/s ({} errors)",
        report.sent,
        report.elapsed_ns / 1e6,
        report.throughput_qps(),
        report.errors
    );
    if report.answers.len() != report.sent {
        return Err(format!(
            "server answered {} of {} requests — connection cut short?",
            report.answers.len(),
            report.sent
        ));
    }
    Ok(())
}
