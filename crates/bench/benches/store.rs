//! Criterion benches for the serving path: one loaded `GraphStore`
//! answering sustained query traffic — the acceptance scenario for the
//! store is a ≥ 10k mixed-query batch from a single loaded store, measured
//! here end to end, plus the amortization levers in isolation (shared
//! reach sources, the memoized expansion cache, the RPQ plan cache).

use criterion::{criterion_group, criterion_main, Criterion};
// The acceptance workload (10k+ mixed queries against one loaded store) is
// shared with `repro --queries`, which records it in BENCH_store.json.
use grepair_bench::serving::mixed_batch;
use grepair_core::{compress, GRePairConfig};
use grepair_hypergraph::Hypergraph;
use grepair_store::{write_container, GraphStore, Query};

/// Long repetitive path: |G| = O(log |g|), the best case for grammar-side
/// queries (and the worst case for naive per-query index traversal).
fn long_path(reps: u32) -> Hypergraph {
    Hypergraph::from_simple_edges(
        (2 * reps + 1) as usize,
        (0..reps).flat_map(|i| [(2 * i, 0u32, 2 * i + 1), (2 * i + 1, 1u32, 2 * i + 2)]),
    )
    .0
}

/// Build a store the way a server would: through the .g2g byte path.
fn loaded_store(reps: u32) -> GraphStore {
    let g = long_path(reps);
    let out = compress(&g, &GRePairConfig::default());
    let enc = grepair_codec::encode(&out.grammar);
    GraphStore::from_bytes(&write_container(&enc.bytes, enc.bit_len)).expect("valid container")
}


fn bench_query_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_batch");
    group.sample_size(10);
    let store = loaded_store(2_048);
    let n = store.total_nodes();
    let batch = mixed_batch(n, 10_000);
    group.bench_function("10k_mixed_one_store", |b| {
        b.iter(|| {
            let answers = store.query_batch(&batch);
            assert!(answers.iter().all(|a| a.is_ok()));
            answers.len()
        })
    });
    // The same 10k requests one by one — what batching amortizes away.
    let singles = mixed_batch(n, 10_000);
    group.bench_function("10k_mixed_individually", |b| {
        b.iter(|| {
            singles
                .iter()
                .map(|q| store.query(q).is_ok() as usize)
                .sum::<usize>()
        })
    });
    group.finish();
}

fn bench_amortization(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_amortization");
    group.sample_size(10);
    let store = loaded_store(2_048);
    let n = store.total_nodes();

    // Shared-source reach: 1k targets from one source.
    let shared: Vec<Query> = (0..1_000u64).map(|t| Query::Reach { s: 0, t: t % n }).collect();
    group.bench_function("reach_1k_shared_source", |b| {
        b.iter(|| store.query_batch(&shared).len())
    });
    // The same pairs through the unshared path.
    group.bench_function("reach_1k_individual", |b| {
        b.iter(|| {
            (0..1_000u64)
                .filter(|&t| store.reachable(0, t % n).unwrap())
                .count()
        })
    });
    // Hot neighbor traffic over few nodes: expansion cache all-hit.
    let hot: Vec<Query> = (0..1_000u64).map(|i| Query::Neighbors(i % 16)).collect();
    group.bench_function("neighbors_1k_hot_nodes", |b| {
        b.iter(|| store.query_batch(&hot).len())
    });
    group.finish();
}

/// The contention scenario: the same 10k mixed batch fanned out across
/// 1/2/4/8 worker threads sharing one store and one batch context. On a
/// multi-core box the 8-thread row should beat `threads_1` (the sequential
/// path) by ≥ 3×; on fewer cores the rows document how gracefully the
/// sharded caches degrade (no lock convoy — times stay near sequential).
fn bench_contention(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_contention");
    group.sample_size(10);
    let store = loaded_store(2_048);
    let n = store.total_nodes();
    let batch = mixed_batch(n, 10_000);
    // Warm the store-wide caches so every thread count measures the same
    // steady serving state, not first-touch compilation.
    assert!(store.query_batch(&batch).iter().all(|a| a.is_ok()));
    for threads in [1usize, 2, 4, 8] {
        group.bench_function(format!("10k_mixed_threads_{threads}"), |b| {
            b.iter(|| {
                let answers = store.query_batch_parallel(&batch, threads);
                assert!(answers.iter().all(|a| a.is_ok()));
                answers.len()
            })
        });
    }
    group.finish();
}

fn bench_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_load");
    group.sample_size(10);
    let g = long_path(2_048);
    let out = compress(&g, &GRePairConfig::default());
    let enc = grepair_codec::encode(&out.grammar);
    let file = write_container(&enc.bytes, enc.bit_len);
    // Decode + validate + eager index build: the cost a server pays once.
    group.bench_function("open_and_index", |b| {
        b.iter(|| GraphStore::from_bytes(&file).expect("valid container").total_nodes())
    });
    group.finish();
}

criterion_group!(benches, bench_query_batch, bench_amortization, bench_contention, bench_load);
criterion_main!(benches);
