//! Criterion benches for §V query evaluation: grammar-side vs
//! decompressed-graph-side, quantifying the paper's "speed-ups proportional
//! to the compression ratio" claim.

use criterion::{criterion_group, criterion_main, Criterion};
use grepair_core::{compress, GRePairConfig};
use grepair_hypergraph::{traverse, Hypergraph};
use grepair_queries::{speedup, GrammarIndex, ReachIndex};

/// Long repetitive path: |G| = O(log |g|), the best case for grammar-side
/// queries.
fn long_path(reps: u32) -> Hypergraph {
    Hypergraph::from_simple_edges(
        (2 * reps + 1) as usize,
        (0..reps).flat_map(|i| [(2 * i, 0u32, 2 * i + 1), (2 * i + 1, 1u32, 2 * i + 2)]),
    )
    .0
}

fn bench_reachability(c: &mut Criterion) {
    let mut group = c.benchmark_group("reachability");
    group.sample_size(20);
    let g = long_path(8_192);
    let out = compress(&g, &GRePairConfig::default());
    let derived = out.grammar.derive();
    let reach = ReachIndex::new(&out.grammar);
    let n = derived.num_nodes() as u64;
    group.bench_function("grammar", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            reach.reachable((i * 7919) % n, (i * 104_729 + 13) % n)
        })
    });
    group.bench_function("bfs_on_val", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            traverse::reachable(&derived, ((i * 7919) % n) as u32, ((i * 104_729 + 13) % n) as u32)
        })
    });
    group.bench_function("index_build", |b| b.iter(|| ReachIndex::new(&out.grammar)));
    group.finish();
}

fn bench_neighborhoods(c: &mut Criterion) {
    let mut group = c.benchmark_group("neighborhood");
    let g = long_path(8_192);
    let out = compress(&g, &GRePairConfig::default());
    let derived = out.grammar.derive();
    let idx = GrammarIndex::new(&out.grammar);
    let n = derived.num_nodes() as u64;
    group.bench_function("grammar_out_neighbors", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            idx.out_neighbors((i * 7919) % n)
        })
    });
    group.bench_function("val_out_neighbors", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            derived.out_neighbors(((i * 7919) % n) as u32).collect::<Vec<_>>()
        })
    });
    group.finish();
}

fn bench_aggregates(c: &mut Criterion) {
    let mut group = c.benchmark_group("aggregates");
    group.sample_size(20);
    let g = long_path(8_192);
    let out = compress(&g, &GRePairConfig::default());
    let derived = out.grammar.derive();
    group.bench_function("components_grammar", |b| {
        b.iter(|| speedup::connected_components(&out.grammar))
    });
    group.bench_function("components_val", |b| {
        b.iter(|| traverse::connected_components(&derived))
    });
    group.bench_function("degrees_grammar", |b| {
        b.iter(|| speedup::degree_extrema(&out.grammar))
    });
    group.finish();
}

criterion_group!(benches, bench_reachability, bench_neighborhoods, bench_aggregates);
criterion_main!(benches);
