//! Criterion benches for the substrates: k²-trees, bit codes, the LZ
//! compressor, the bucket priority queue (vs a naive max-scan), and string
//! RePair.

use criterion::{criterion_group, criterion_main, Criterion};
use grepair_bits::codes;
use grepair_bits::{BitReader, BitWriter};
use grepair_core::queue::BucketQueue;
use grepair_k2tree::K2Tree;
use rand::prelude::*;
use rand::rngs::StdRng;

fn bench_k2tree(c: &mut Criterion) {
    let mut group = c.benchmark_group("k2tree");
    let mut rng = StdRng::seed_from_u64(1);
    let n = 4096u32;
    let points: Vec<(u32, u32)> = (0..40_000)
        .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
        .collect();
    group.bench_function("build_40k", |b| {
        b.iter(|| K2Tree::build(2, n, n, points.clone()))
    });
    let tree = K2Tree::build(2, n, n, points.clone());
    group.bench_function("cell_query", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % points.len();
            tree.get(points[i].0, points[i].1)
        })
    });
    group.bench_function("row_query", |b| {
        let mut r = 0;
        b.iter(|| {
            r = (r + 97) % n;
            tree.row(r)
        })
    });
    group.finish();
}

fn bench_codes(c: &mut Criterion) {
    let mut group = c.benchmark_group("elias_delta");
    let values: Vec<u64> = (1..10_000).collect();
    group.bench_function("write_10k", |b| {
        b.iter(|| {
            let mut w = BitWriter::new();
            for &v in &values {
                codes::write_delta(&mut w, v);
            }
            w.finish()
        })
    });
    let mut w = BitWriter::new();
    for &v in &values {
        codes::write_delta(&mut w, v);
    }
    let (bytes, len) = w.finish();
    group.bench_function("read_10k", |b| {
        b.iter(|| {
            let mut r = BitReader::new(&bytes, len);
            let mut sum = 0u64;
            for _ in 0..values.len() {
                sum += codes::read_delta(&mut r).unwrap();
            }
            sum
        })
    });
    group.finish();
}

fn bench_lz(c: &mut Criterion) {
    let mut group = c.benchmark_group("lz");
    group.sample_size(20);
    let data: Vec<u8> = b"the quick brown fox jumps over the lazy dog ".repeat(2000);
    group.throughput(criterion::Throughput::Bytes(data.len() as u64));
    group.bench_function("compress_88k", |b| b.iter(|| grepair_lz::compress(&data)));
    let packed = grepair_lz::compress(&data);
    group.bench_function("decompress_88k", |b| {
        b.iter(|| grepair_lz::decompress(&packed).unwrap())
    });
    group.finish();
}

fn bench_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("priority_queue");
    let mut rng = StdRng::seed_from_u64(2);
    let ops: Vec<(u32, usize)> = (0..100_000)
        .map(|_| (rng.gen_range(0..2_000), rng.gen_range(0..64)))
        .collect();
    group.bench_function("bucket_queue_100k_updates", |b| {
        b.iter(|| {
            let mut q = BucketQueue::new(10_000);
            let mut counts = vec![0usize; 2_000];
            for &(item, count) in &ops {
                counts[item as usize] = count;
                q.update(item, count);
            }
            let mut popped = 0;
            while q.pop_best(|i| counts[i as usize]).is_some() {
                popped += 1;
            }
            popped
        })
    });
    // Naive alternative: scan a hash map for the max on every pop.
    group.bench_function("naive_scan_100k_updates", |b| {
        b.iter(|| {
            let mut counts: std::collections::HashMap<u32, usize> = Default::default();
            for &(item, count) in &ops {
                if count < 2 {
                    counts.remove(&item);
                } else {
                    counts.insert(item, count);
                }
            }
            let mut popped = 0;
            while let Some((&item, _)) = counts.iter().max_by_key(|(_, &c)| c) {
                counts.remove(&item);
                popped += 1;
            }
            popped
        })
    });
    group.finish();
}

fn bench_string_repair(c: &mut Criterion) {
    let mut group = c.benchmark_group("string_repair");
    group.sample_size(10);
    let seq: Vec<u32> = (0..60_000u32).map(|i| i % 7).collect();
    group.bench_function("repetitive_60k", |b| {
        b.iter(|| grepair_baselines::repair_strings::repair(&seq, 7))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_k2tree,
    bench_codes,
    bench_lz,
    bench_queue,
    bench_string_repair
);
criterion_main!(benches);
