//! Criterion benches for the compression pipeline: end-to-end gRePair on
//! representative graph shapes, phase costs (order computation, counting),
//! and the ablations DESIGN.md calls out (pruning on/off, virtual edges
//! on/off, bucket queue vs the naive alternative is covered in
//! `substrates.rs`).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use grepair_bench::{run_grepair, Scale};
use grepair_core::{compress, Compressor, GRePairConfig};
use grepair_datasets::{network, rdf, version};
use grepair_hypergraph::order::{compute_order, fp_refine, FpConfig, NodeOrder};

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("compress");
    group.sample_size(10);
    let cases = [
        ("coauthorship", network::co_authorship(2_000, 1_500, 5, 1)),
        ("types_star", rdf::types_star(8_000, 16, 2)),
        (
            "version_copies",
            version::disjoint_copies(&version::circle_with_diagonal(), 512),
        ),
        ("web_copy", network::web_copy(4_000, 5, 0.65, 3)),
    ];
    for (name, g) in cases {
        group.throughput(criterion::Throughput::Elements(g.num_edges() as u64));
        group.bench_function(name, |b| {
            b.iter(|| compress(&g, &GRePairConfig::default()))
        });
    }
    group.finish();
}

fn bench_orders(c: &mut Criterion) {
    let mut group = c.benchmark_group("node_order");
    group.sample_size(10);
    let g = network::co_authorship(4_000, 3_000, 5, 7);
    for order in [NodeOrder::Natural, NodeOrder::Bfs, NodeOrder::Fp0, NodeOrder::Fp] {
        group.bench_function(order.to_string(), |b| {
            b.iter(|| compute_order(&g, order))
        });
    }
    group.bench_function("fp_refine_undirected", |b| {
        b.iter(|| {
            fp_refine(
                &g,
                FpConfig { use_direction: false, use_labels: false, max_rounds: 64 },
            )
        })
    });
    group.finish();
}

fn bench_phases(c: &mut Criterion) {
    let mut group = c.benchmark_group("phases");
    group.sample_size(10);
    let g = version::disjoint_copies(&version::circle_with_diagonal(), 1024);
    group.bench_function("counting_only", |b| {
        b.iter_batched(
            || Compressor::new(&g, &GRePairConfig::default()),
            |mut comp| comp.count_all(),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("full_pipeline", |b| {
        b.iter(|| compress(&g, &GRePairConfig::default()))
    });
    group.finish();
}

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    let g = version::disjoint_copies(&version::circle_with_diagonal(), 512);
    for (name, config) in [
        ("default", GRePairConfig::default()),
        ("no_prune", GRePairConfig { prune: false, ..Default::default() }),
        (
            "no_virtual",
            GRePairConfig { connect_components: false, ..Default::default() },
        ),
        ("rank2", GRePairConfig { max_rank: 2, ..Default::default() }),
    ] {
        group.bench_function(name, |b| b.iter(|| compress(&g, &config)));
    }
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    group.sample_size(20);
    let suite = grepair_bench::network_suite(Scale::Quick);
    let g = &suite[2].graph; // CA-GrQc analog
    let run = run_grepair(g, &GRePairConfig::default());
    group.bench_function("encode", |b| {
        b.iter(|| grepair_codec::encode(&run.compressed.grammar))
    });
    group.bench_function("decode", |b| {
        b.iter(|| grepair_codec::decode(&run.encoded.bytes, run.encoded.bit_len).unwrap())
    });
    group.bench_function("derive", |b| b.iter(|| run.compressed.grammar.derive()));
    group.finish();
}

criterion_group!(
    benches,
    bench_end_to_end,
    bench_orders,
    bench_phases,
    bench_ablations,
    bench_codec
);
criterion_main!(benches);
