//! Canonical Huffman coding of LZ77 tokens with DEFLATE's length/distance
//! bucket tables (base value + extra bits per bucket).

use crate::lz77::Token;
use crate::LzError;
use grepair_bits::codes::{read_gamma, write_gamma};
use grepair_bits::{BitReader, BitWriter};

/// DEFLATE length buckets: symbol 257+i covers lengths starting at
/// `LENGTH_BASE[i]` with `LENGTH_EXTRA[i]` extra bits.
const LENGTH_BASE: [u16; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115,
    131, 163, 195, 227, 258,
];
const LENGTH_EXTRA: [u8; 29] = [
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
];

/// DEFLATE distance buckets.
const DIST_BASE: [u16; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
    2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
];
const DIST_EXTRA: [u8; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12,
    13, 13,
];

/// End-of-block symbol in the literal/length alphabet.
const EOB: usize = 256;
/// Literal/length alphabet size: 256 literals + EOB + 29 length buckets.
const LIT_SYMBOLS: usize = 286;
const DIST_SYMBOLS: usize = 30;

fn length_bucket(len: u16) -> (usize, u8, u16) {
    let i = match LENGTH_BASE.binary_search(&len) {
        Ok(i) => i,
        Err(i) => i - 1,
    };
    (257 + i, LENGTH_EXTRA[i], len - LENGTH_BASE[i])
}

fn dist_bucket(dist: u16) -> (usize, u8, u16) {
    let i = match DIST_BASE.binary_search(&dist) {
        Ok(i) => i,
        Err(i) => i - 1,
    };
    (i, DIST_EXTRA[i], dist - DIST_BASE[i])
}

// ----------------------------------------------------------------------
// Canonical Huffman tables
// ----------------------------------------------------------------------

/// Compute Huffman code lengths for `freqs` (0 for unused symbols) with a
/// simple two-queue construction over a sorted leaf list.
fn code_lengths(freqs: &[u64]) -> Vec<u8> {
    let used: Vec<usize> = (0..freqs.len()).filter(|&s| freqs[s] > 0).collect();
    let mut lengths = vec![0u8; freqs.len()];
    match used.len() {
        0 => return lengths,
        1 => {
            lengths[used[0]] = 1;
            return lengths;
        }
        _ => {}
    }
    // Heap of (weight, tie, node index); internal nodes get depth via parent
    // pointers afterwards.
    #[derive(Clone)]
    struct Node {
        parent: usize,
    }
    let mut nodes: Vec<Node> = used.iter().map(|_| Node { parent: usize::MAX }).collect();
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, usize)>> = used
        .iter()
        .enumerate()
        .map(|(i, &s)| std::cmp::Reverse((freqs[s], i)))
        .collect();
    while heap.len() > 1 {
        let std::cmp::Reverse((wa, a)) = heap.pop().unwrap();
        let std::cmp::Reverse((wb, b)) = heap.pop().unwrap();
        let idx = nodes.len();
        nodes.push(Node { parent: usize::MAX });
        nodes[a].parent = idx;
        nodes[b].parent = idx;
        heap.push(std::cmp::Reverse((wa + wb, idx)));
    }
    for (i, &s) in used.iter().enumerate() {
        let mut depth = 0u8;
        let mut cur = i;
        while nodes[cur].parent != usize::MAX {
            depth += 1;
            cur = nodes[cur].parent;
        }
        lengths[s] = depth.max(1);
    }
    lengths
}

/// Canonical code assignment: codes per symbol given lengths.
fn canonical_codes(lengths: &[u8]) -> Vec<u32> {
    let max_len = lengths.iter().copied().max().unwrap_or(0) as usize;
    let mut count = vec![0u32; max_len + 1];
    for &l in lengths {
        if l > 0 {
            count[l as usize] += 1;
        }
    }
    let mut next = vec![0u32; max_len + 2];
    let mut code = 0u32;
    for l in 1..=max_len {
        code = (code + count[l - 1]) << 1;
        next[l] = code;
    }
    lengths
        .iter()
        .map(|&l| {
            if l == 0 {
                0
            } else {
                let c = next[l as usize];
                next[l as usize] += 1;
                c
            }
        })
        .collect()
}

/// Table-free canonical decoder: per-length `first code` and `first symbol
/// index` arrays over symbols sorted by (length, symbol).
struct Decoder {
    max_len: usize,
    first_code: Vec<u32>,
    first_index: Vec<u32>,
    symbols: Vec<u16>,
}

impl Decoder {
    fn new(lengths: &[u8]) -> Self {
        let max_len = lengths.iter().copied().max().unwrap_or(0) as usize;
        let mut symbols: Vec<u16> = (0..lengths.len() as u16)
            .filter(|&s| lengths[s as usize] > 0)
            .collect();
        symbols.sort_by_key(|&s| (lengths[s as usize], s));
        let mut count = vec![0u32; max_len + 1];
        for &l in lengths {
            if l > 0 {
                count[l as usize] += 1;
            }
        }
        // Canonical recurrence: first_code(1) = 0,
        // first_code(l) = (first_code(l-1) + count(l-1)) << 1.
        let mut first_code = vec![0u32; max_len + 2];
        let mut first_index = vec![0u32; max_len + 2];
        let mut code = 0u32;
        let mut index = 0u32;
        for l in 1..=max_len {
            if l > 1 {
                code = (code + count[l - 1]) << 1;
            }
            first_code[l] = code;
            first_index[l] = index;
            index += count[l];
        }
        first_index[max_len + 1] = index;
        Self { max_len, first_code, first_index, symbols }
    }

    fn read(&self, r: &mut BitReader<'_>) -> Result<u16, LzError> {
        let mut code = 0u32;
        for l in 1..=self.max_len {
            code = (code << 1) | r.read_bit()? as u32;
            let count_l = if l < self.max_len + 1 {
                self.first_index.get(l + 1).copied().unwrap_or(self.symbols.len() as u32)
                    - self.first_index[l]
            } else {
                0
            };
            if count_l > 0 && code >= self.first_code[l] && code < self.first_code[l] + count_l {
                let idx = self.first_index[l] + (code - self.first_code[l]);
                return Ok(self.symbols[idx as usize]);
            }
        }
        Err(LzError::Corrupt("invalid Huffman code"))
    }
}

fn write_lengths(w: &mut BitWriter, lengths: &[u8]) {
    // γ(len+1) per symbol with a zero-run shortcut: γ(1) then γ(run).
    let mut i = 0;
    while i < lengths.len() {
        if lengths[i] == 0 {
            let mut run = 0;
            while i + run < lengths.len() && lengths[i + run] == 0 {
                run += 1;
            }
            write_gamma(w, 1); // escape: zero run
            write_gamma(w, run as u64);
            i += run;
        } else {
            write_gamma(w, lengths[i] as u64 + 1);
            i += 1;
        }
    }
}

fn read_lengths(r: &mut BitReader<'_>, n: usize) -> Result<Vec<u8>, LzError> {
    let mut lengths = vec![0u8; n];
    let mut i = 0;
    while i < n {
        let v = read_gamma(r)?;
        if v == 1 {
            let run = read_gamma(r)? as usize;
            if i + run > n {
                return Err(LzError::Corrupt("zero run past table end"));
            }
            i += run;
        } else {
            if v - 1 > 64 {
                return Err(LzError::Corrupt("code length too large"));
            }
            lengths[i] = (v - 1) as u8;
            i += 1;
        }
    }
    Ok(lengths)
}

/// Encode the token stream (with trailing EOB) into `w`.
pub fn encode_tokens(w: &mut BitWriter, tokens: &[Token]) {
    let mut lit_freq = vec![0u64; LIT_SYMBOLS];
    let mut dist_freq = vec![0u64; DIST_SYMBOLS];
    for &t in tokens {
        match t {
            Token::Literal(b) => lit_freq[b as usize] += 1,
            Token::Match { len, dist } => {
                lit_freq[length_bucket(len).0] += 1;
                dist_freq[dist_bucket(dist).0] += 1;
            }
        }
    }
    lit_freq[EOB] += 1;
    let lit_lengths = code_lengths(&lit_freq);
    let dist_lengths = code_lengths(&dist_freq);
    let lit_codes = canonical_codes(&lit_lengths);
    let dist_codes = canonical_codes(&dist_lengths);
    write_lengths(w, &lit_lengths);
    write_lengths(w, &dist_lengths);

    let put = |w: &mut BitWriter, codes: &[u32], lengths: &[u8], sym: usize| {
        debug_assert!(lengths[sym] > 0);
        w.push_bits(codes[sym] as u64, lengths[sym] as u32);
    };
    for &t in tokens {
        match t {
            Token::Literal(b) => put(w, &lit_codes, &lit_lengths, b as usize),
            Token::Match { len, dist } => {
                let (sym, extra, rest) = length_bucket(len);
                put(w, &lit_codes, &lit_lengths, sym);
                w.push_bits(rest as u64, extra as u32);
                let (dsym, dextra, drest) = dist_bucket(dist);
                put(w, &dist_codes, &dist_lengths, dsym);
                w.push_bits(drest as u64, dextra as u32);
            }
        }
    }
    put(w, &lit_codes, &lit_lengths, EOB);
}

/// Decode a token stream written by [`encode_tokens`].
pub fn decode_tokens(r: &mut BitReader<'_>) -> Result<Vec<Token>, LzError> {
    let lit_lengths = read_lengths(r, LIT_SYMBOLS)?;
    let dist_lengths = read_lengths(r, DIST_SYMBOLS)?;
    let lit = Decoder::new(&lit_lengths);
    let dist = Decoder::new(&dist_lengths);
    let mut tokens = Vec::new();
    loop {
        let sym = lit.read(r)? as usize;
        if sym == EOB {
            return Ok(tokens);
        }
        if sym < 256 {
            tokens.push(Token::Literal(sym as u8));
            continue;
        }
        let bucket = sym - 257;
        if bucket >= LENGTH_BASE.len() {
            return Err(LzError::Corrupt("bad length symbol"));
        }
        let extra = r.read_bits(LENGTH_EXTRA[bucket] as u32)? as u16;
        let len = LENGTH_BASE[bucket] + extra;
        let dsym = dist.read(r)? as usize;
        if dsym >= DIST_BASE.len() {
            return Err(LzError::Corrupt("bad distance symbol"));
        }
        let dextra = r.read_bits(DIST_EXTRA[dsym] as u32)? as u16;
        let d = DIST_BASE[dsym] + dextra;
        tokens.push(Token::Match { len, dist: d });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_all_lengths() {
        for len in 3..=258u16 {
            let (sym, extra, rest) = length_bucket(len);
            assert!((257..286).contains(&sym), "len {len}");
            assert_eq!(LENGTH_BASE[sym - 257] + rest, len);
            assert!(rest < (1 << extra) || extra == 0 && rest == 0);
        }
    }

    #[test]
    fn buckets_cover_all_distances() {
        for dist in 1..=32768u16 {
            let (sym, extra, rest) = dist_bucket(dist);
            assert!(sym < 30);
            assert_eq!(DIST_BASE[sym] + rest, dist);
            assert!(rest < (1 << extra) || extra == 0 && rest == 0);
            if dist == 32768 {
                break;
            }
        }
    }

    #[test]
    fn code_lengths_satisfy_kraft() {
        let mut freqs = vec![0u64; 300];
        for (i, f) in freqs.iter_mut().enumerate() {
            *f = (i as u64 % 17) * (i as u64 % 3);
        }
        let lengths = code_lengths(&freqs);
        let kraft: f64 = lengths
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 2f64.powi(-(l as i32)))
            .sum();
        assert!(kraft <= 1.0 + 1e-9, "kraft = {kraft}");
        for (i, &f) in freqs.iter().enumerate() {
            assert_eq!(f > 0, lengths[i] > 0, "symbol {i}");
        }
    }

    #[test]
    fn canonical_codes_are_prefix_free() {
        let freqs = vec![5u64, 9, 12, 13, 16, 45];
        let lengths = code_lengths(&freqs);
        let codes = canonical_codes(&lengths);
        for i in 0..freqs.len() {
            for j in 0..freqs.len() {
                if i == j {
                    continue;
                }
                let (li, lj) = (lengths[i] as u32, lengths[j] as u32);
                if li <= lj {
                    // code i must not prefix code j
                    assert_ne!(codes[i], codes[j] >> (lj - li), "{i} prefixes {j}");
                }
            }
        }
    }

    #[test]
    fn single_symbol_stream() {
        let tokens = vec![Token::Literal(b'z'); 50];
        let mut w = BitWriter::new();
        encode_tokens(&mut w, &tokens);
        let (bytes, len) = w.finish();
        let mut r = BitReader::new(&bytes, len);
        assert_eq!(decode_tokens(&mut r).unwrap(), tokens);
    }

    #[test]
    fn mixed_token_round_trip() {
        let tokens = vec![
            Token::Literal(b'a'),
            Token::Literal(b'b'),
            Token::Match { len: 3, dist: 2 },
            Token::Match { len: 258, dist: 32768 },
            Token::Literal(0),
            Token::Match { len: 17, dist: 1 },
        ];
        let mut w = BitWriter::new();
        encode_tokens(&mut w, &tokens);
        let (bytes, len) = w.finish();
        let mut r = BitReader::new(&bytes, len);
        assert_eq!(decode_tokens(&mut r).unwrap(), tokens);
    }
}
