//! LZ77 tokenization with hash-chain match finding (DEFLATE parameters:
//! 32 KiB window, match lengths 3..=258).

use crate::LzError;

/// Maximum backward distance.
pub const WINDOW: usize = 32 * 1024;
/// Minimum match length worth emitting.
pub const MIN_MATCH: usize = 3;
/// Maximum match length.
pub const MAX_MATCH: usize = 258;
/// Cap on hash-chain probes per position (compression/speed trade-off).
const MAX_CHAIN: usize = 64;

/// One LZ77 token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token {
    /// A raw byte.
    Literal(u8),
    /// Copy `len` bytes starting `dist` bytes back.
    Match {
        /// Match length, `MIN_MATCH..=MAX_MATCH`.
        len: u16,
        /// Backward distance, `1..=WINDOW`.
        dist: u16,
    },
}

#[inline]
fn hash3(data: &[u8], i: usize) -> usize {
    let h = (data[i] as u32)
        .wrapping_mul(0x9E37)
        .wrapping_add((data[i + 1] as u32).wrapping_mul(0x79B9))
        .wrapping_add((data[i + 2] as u32).wrapping_mul(0x7F4A));
    (h as usize) & (HASH_SIZE - 1)
}

const HASH_SIZE: usize = 1 << 15;

/// Greedy LZ77 with one-step lazy matching, as in DEFLATE's fast levels.
pub fn tokenize(data: &[u8]) -> Vec<Token> {
    let n = data.len();
    let mut tokens = Vec::new();
    if n == 0 {
        return tokens;
    }
    // head[h] = most recent position with hash h; prev[i] = previous position
    // in i's chain. usize::MAX = empty.
    let mut head = vec![usize::MAX; HASH_SIZE];
    let mut prev = vec![usize::MAX; n];

    let find_match = |head: &[usize], prev: &[usize], i: usize| -> Option<(usize, usize)> {
        if i + MIN_MATCH > n {
            return None;
        }
        let mut best_len = MIN_MATCH - 1;
        let mut best_dist = 0usize;
        let mut cand = head[hash3(data, i)];
        let mut probes = 0;
        while cand != usize::MAX && i - cand <= WINDOW && probes < MAX_CHAIN {
            // Quick reject on the byte one past the current best.
            if cand + best_len < n
                && i + best_len < n
                && data[cand + best_len] == data[i + best_len]
            {
                let limit = (n - i).min(MAX_MATCH);
                let mut l = 0;
                while l < limit && data[cand + l] == data[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_dist = i - cand;
                    if l == MAX_MATCH {
                        break;
                    }
                }
            }
            cand = prev[cand];
            probes += 1;
        }
        (best_len >= MIN_MATCH).then_some((best_len, best_dist))
    };

    let insert = |head: &mut [usize], prev: &mut [usize], i: usize| {
        if i + MIN_MATCH <= n {
            let h = hash3(data, i);
            prev[i] = head[h];
            head[h] = i;
        }
    };

    let mut i = 0usize;
    while i < n {
        let here = find_match(&head, &prev, i);
        // One-step lazy: if the next position has a strictly longer match,
        // emit a literal now and take the longer match next round.
        let take = match here {
            Some((len, dist)) => {
                let lazy_better = i + 1 < n
                    && find_match(&head, &prev, i + 1)
                        .is_some_and(|(l2, _)| l2 > len + 1);
                if lazy_better {
                    None
                } else {
                    Some((len, dist))
                }
            }
            None => None,
        };
        match take {
            Some((len, dist)) => {
                tokens.push(Token::Match { len: len as u16, dist: dist as u16 });
                for j in i..i + len {
                    insert(&mut head, &mut prev, j);
                }
                i += len;
            }
            None => {
                tokens.push(Token::Literal(data[i]));
                insert(&mut head, &mut prev, i);
                i += 1;
            }
        }
    }
    tokens
}

/// Reconstruct the byte stream from tokens.
pub fn detokenize(tokens: &[Token]) -> Result<Vec<u8>, LzError> {
    let mut out: Vec<u8> = Vec::new();
    for &t in tokens {
        match t {
            Token::Literal(b) => out.push(b),
            Token::Match { len, dist } => {
                let dist = dist as usize;
                let len = len as usize;
                if dist == 0 || dist > out.len() {
                    return Err(LzError::Corrupt("match distance out of range"));
                }
                let start = out.len() - dist;
                // Overlapping copies are the point (runs), so go byte by byte.
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_short() {
        assert!(tokenize(b"").is_empty());
        assert_eq!(tokenize(b"ab"), vec![Token::Literal(b'a'), Token::Literal(b'b')]);
    }

    #[test]
    fn finds_repeats() {
        let tokens = tokenize(b"abcabcabc");
        assert_eq!(tokens[0], Token::Literal(b'a'));
        assert!(
            tokens.iter().any(|t| matches!(t, Token::Match { dist: 3, .. })),
            "{tokens:?}"
        );
        assert_eq!(detokenize(&tokens).unwrap(), b"abcabcabc");
    }

    #[test]
    fn overlapping_run_match() {
        // "aaaa..." gives a dist-1 match longer than the distance.
        let data = vec![b'a'; 100];
        let tokens = tokenize(&data);
        assert!(tokens.len() <= 3, "{tokens:?}");
        assert_eq!(detokenize(&tokens).unwrap(), data);
    }

    #[test]
    fn bad_distance_is_an_error() {
        let err = detokenize(&[Token::Match { len: 3, dist: 5 }]);
        assert!(err.is_err());
    }

    #[test]
    fn max_len_matches() {
        let data = b"x".repeat(MAX_MATCH * 3 + 1);
        let tokens = tokenize(&data);
        assert_eq!(detokenize(&tokens).unwrap(), data);
        assert!(tokens
            .iter()
            .any(|t| matches!(t, Token::Match { len, .. } if *len as usize == MAX_MATCH)));
    }

    #[test]
    fn window_limit_respected() {
        // A repeat 40000 bytes apart must NOT produce a match (window 32768).
        let mut data = b"UNIQUEPREFIX".to_vec();
        data.extend((0..40_000u32).map(|i| (i % 251) as u8));
        data.extend_from_slice(b"UNIQUEPREFIX");
        let tokens = tokenize(&data);
        for t in &tokens {
            if let Token::Match { dist, .. } = t {
                assert!((*dist as usize) <= WINDOW);
            }
        }
        assert_eq!(detokenize(&tokens).unwrap(), data);
    }
}
