//! A DEFLATE-style general-purpose byte compressor: LZ77 with a 32 KiB
//! window and hash-chain matching, followed by canonical Huffman coding of
//! literal/length and distance symbols (the standard DEFLATE bucket tables).
//!
//! Why this exists: the LM baseline (Grabowski & Bieniecki \[20\]) compresses
//! its merged adjacency lists with gzip. The offline crate set has no gzip
//! binding, so this crate plays that role — same algorithm family, same
//! asymptotics, comparable ratios. It is a single-block format (no need for
//! streaming here) with explicit error handling on decode.
//!
//! ```
//! let data = b"abcabcabcabcabcabc".to_vec();
//! let packed = grepair_lz::compress(&data);
//! assert_eq!(grepair_lz::decompress(&packed).unwrap(), data);
//! ```

#![forbid(unsafe_code)]

pub mod huffman;
pub mod lz77;

use grepair_bits::{BitReader, BitWriter};

/// Errors produced when decoding a compressed stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LzError {
    /// The bit stream ended early or a code was malformed.
    Corrupt(&'static str),
}

impl std::fmt::Display for LzError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LzError::Corrupt(what) => write!(f, "corrupt stream: {what}"),
        }
    }
}

impl std::error::Error for LzError {}

impl From<grepair_bits::BitError> for LzError {
    fn from(_: grepair_bits::BitError) -> Self {
        LzError::Corrupt("unexpected end of bit stream")
    }
}

/// Compress `data` into a self-contained byte block.
pub fn compress(data: &[u8]) -> Vec<u8> {
    let tokens = lz77::tokenize(data);
    let mut w = BitWriter::new();
    grepair_bits::codes::write_delta(&mut w, data.len() as u64 + 1);
    huffman::encode_tokens(&mut w, &tokens);
    let (bytes, bit_len) = w.finish();
    // Prefix with the exact bit length (8-byte LE) so decode can bound reads.
    let mut out = Vec::with_capacity(bytes.len() + 8);
    out.extend_from_slice(&bit_len.to_le_bytes());
    out.extend_from_slice(&bytes);
    out
}

/// Exact compressed size in bits (excluding the 64-bit container length
/// prefix — callers comparing codec payloads want the payload size).
pub fn compressed_bits(data: &[u8]) -> u64 {
    let tokens = lz77::tokenize(data);
    let mut w = BitWriter::new();
    grepair_bits::codes::write_delta(&mut w, data.len() as u64 + 1);
    huffman::encode_tokens(&mut w, &tokens);
    w.bit_len()
}

/// Decompress a block produced by [`compress`].
pub fn decompress(block: &[u8]) -> Result<Vec<u8>, LzError> {
    if block.len() < 8 {
        return Err(LzError::Corrupt("missing length prefix"));
    }
    let bit_len = u64::from_le_bytes(block[..8].try_into().unwrap());
    let payload = &block[8..];
    if bit_len > payload.len() as u64 * 8 {
        return Err(LzError::Corrupt("length prefix exceeds payload"));
    }
    let mut r = BitReader::new(payload, bit_len);
    let out_len = grepair_bits::codes::read_delta(&mut r)? - 1;
    let tokens = huffman::decode_tokens(&mut r)?;
    let data = lz77::detokenize(&tokens)?;
    if data.len() as u64 != out_len {
        return Err(LzError::Corrupt("output length mismatch"));
    }
    Ok(data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) {
        let packed = compress(data);
        assert_eq!(decompress(&packed).unwrap(), data, "len {}", data.len());
    }

    #[test]
    fn empty_input() {
        round_trip(b"");
    }

    #[test]
    fn tiny_inputs() {
        round_trip(b"a");
        round_trip(b"ab");
        round_trip(b"aaa");
    }

    #[test]
    fn repetitive_text_compresses_well() {
        let data: Vec<u8> = b"the quick brown fox ".repeat(500);
        let packed = compress(&data);
        assert!(packed.len() * 10 < data.len(), "{} vs {}", packed.len(), data.len());
        round_trip(&data);
    }

    #[test]
    fn long_runs() {
        let data = vec![0u8; 100_000];
        round_trip(&data);
        let packed = compress(&data);
        assert!(packed.len() < 300, "run should collapse, got {}", packed.len());
    }

    #[test]
    fn pseudo_random_survives() {
        let mut x = 0x12345678u64;
        let data: Vec<u8> = (0..50_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect();
        round_trip(&data);
    }

    #[test]
    fn structured_binary_like_adjacency_lists() {
        // Varint-ish deltas, the shape LM feeds into gzip.
        let mut data = Vec::new();
        for block in 0..200u32 {
            for i in 0..40u32 {
                data.extend_from_slice(&(block * 7 + i % 5).to_le_bytes());
            }
        }
        let packed = compress(&data);
        assert!(packed.len() * 3 < data.len());
        round_trip(&data);
    }

    #[test]
    fn corrupt_streams_are_rejected_not_panicking() {
        assert!(decompress(&[1, 2, 3]).is_err());
        let huge_len = u64::MAX.to_le_bytes();
        let mut bogus = huge_len.to_vec();
        bogus.extend_from_slice(&[0; 16]);
        assert!(decompress(&bogus).is_err());
        // Bit-flip every position of a small block: must never panic.
        let packed = compress(b"hello world hello world hello");
        for i in 8..packed.len() {
            for bit in 0..8 {
                let mut copy = packed.clone();
                copy[i] ^= 1 << bit;
                let _ = decompress(&copy); // Ok or Err, but no panic
            }
        }
    }

    #[test]
    fn matches_cross_the_whole_window() {
        let mut data = Vec::new();
        data.extend_from_slice(&[7u8; 100]);
        data.extend(std::iter::repeat_n(0u8, 32_000));
        data.extend_from_slice(&[7u8; 100]);
        round_trip(&data);
    }
}
