//! Property tests for the DEFLATE-like compressor: lossless on arbitrary
//! byte strings, including adversarial repetition structures.

use proptest::prelude::*;

proptest! {
    #[test]
    fn arbitrary_bytes_round_trip(data in proptest::collection::vec(any::<u8>(), 0..8192)) {
        let packed = grepair_lz::compress(&data);
        prop_assert_eq!(grepair_lz::decompress(&packed).unwrap(), data);
    }

    #[test]
    fn repetitive_bytes_round_trip(
        unit in proptest::collection::vec(any::<u8>(), 1..32),
        reps in 1usize..400,
    ) {
        let data: Vec<u8> = unit.iter().copied().cycle().take(unit.len() * reps).collect();
        let packed = grepair_lz::compress(&data);
        prop_assert_eq!(grepair_lz::decompress(&packed).unwrap(), data.clone());
        // Strong repetition must compress once past trivial sizes.
        if data.len() > 2048 {
            prop_assert!(packed.len() < data.len());
        }
    }

    #[test]
    fn low_entropy_alphabet_round_trip(
        data in proptest::collection::vec(0u8..4, 0..8192)
    ) {
        let packed = grepair_lz::compress(&data);
        prop_assert_eq!(grepair_lz::decompress(&packed).unwrap(), data);
    }

    #[test]
    fn tokenizer_is_lossless(
        data in proptest::collection::vec(any::<u8>(), 0..4096)
    ) {
        let tokens = grepair_lz::lz77::tokenize(&data);
        prop_assert_eq!(grepair_lz::lz77::detokenize(&tokens).unwrap(), data.clone());
        for t in &tokens {
            if let grepair_lz::lz77::Token::Match { len, dist } = t {
                prop_assert!((*len as usize) >= grepair_lz::lz77::MIN_MATCH);
                prop_assert!((*len as usize) <= grepair_lz::lz77::MAX_MATCH);
                prop_assert!((*dist as usize) <= grepair_lz::lz77::WINDOW);
            }
        }
    }
}
