//! Cross-crate integration tests: the full pipeline
//! generate → compress → encode → decode → derive → query, on every dataset
//! family, checked for exact losslessness and query agreement.

use graph_grammar_repair::baselines::{k2, lm};
use graph_grammar_repair::datasets::{network, rdf, ttt, version};
use graph_grammar_repair::hypergraph::traverse;
use graph_grammar_repair::prelude::*;
use graph_grammar_repair::queries::speedup;

/// Compress, serialize, decode, derive, and compare exactly.
fn full_round_trip(g: &Hypergraph, config: &GRePairConfig) -> CompressedGraph {
    let out = compress(g, config);
    out.grammar.validate().expect("valid grammar");
    let encoded = encode(&out.grammar);
    let decoded = decode(&encoded.bytes, encoded.bit_len).expect("decodable");
    let derived = decoded.derive();
    assert_eq!(derived.num_nodes(), g.num_nodes());
    assert_eq!(derived.num_edges(), g.num_edges());
    assert_eq!(
        derived.edge_multiset_mapped(|v| out.node_map[v as usize]),
        g.edge_multiset(),
        "val(decode(encode(G))) != input"
    );
    out
}

#[test]
fn network_graph_pipeline() {
    let g = network::co_authorship(800, 600, 5, 11);
    let out = full_round_trip(&g, &GRePairConfig::default());
    assert!(out.stats.ratio() <= 1.0 + 1e-9);
}

#[test]
fn rdf_pipeline_compresses_stars() {
    let g = rdf::types_star(6_000, 12, 5);
    let out = full_round_trip(&g, &GRePairConfig::default());
    let encoded = encode(&out.grammar);
    let baseline = k2::encode(&g);
    assert!(
        encoded.bit_len * 2 < baseline.bit_len,
        "gRePair {} vs k2 {}: stars must compress at least 2x better",
        encoded.bit_len,
        baseline.bit_len
    );
}

#[test]
fn version_graph_pipeline_beats_baselines() {
    let g = version::disjoint_copies(&version::circle_with_diagonal(), 256);
    let out = full_round_trip(&g, &GRePairConfig::default());
    let encoded = encode(&out.grammar);
    let k2 = k2::encode(&g);
    let lm = lm::encode(&g);
    assert!(encoded.bit_len < k2.bit_len / 4, "vs k2");
    assert!(encoded.bit_len < lm.bit_len, "vs LM");
}

#[test]
fn ttt_subdue_compresses_like_the_paper() {
    // Paper: 0.12 bpe on Tic-Tac-Toe vs 9.62 for k2.
    let g = ttt::subdue_endgames();
    let out = full_round_trip(&g, &GRePairConfig::default());
    let encoded = encode(&out.grammar);
    let bpe = encoded.bits_per_edge(g.num_edges());
    assert!(bpe < 1.0, "expected sub-1 bpe on identical copies, got {bpe}");
    let k2 = k2::encode(&g);
    assert!(encoded.bit_len * 8 < k2.bit_len, "paper shows ~80x gap, ours {bpe}");
}

#[test]
fn exact_game_graph_round_trips() {
    let g = ttt::game_graph();
    full_round_trip(&g, &GRePairConfig::default());
}

#[test]
fn queries_agree_end_to_end() {
    let history = version::CoauthorshipHistory::generate(4, 30, 200, 20, 3);
    let g = history.version_graph(3);
    let out = compress(&g, &GRePairConfig::default());
    let derived = out.grammar.derive();

    // Aggregates.
    let (_, cc) = traverse::connected_components(&derived);
    assert_eq!(speedup::connected_components(&out.grammar), cc as u64);

    // Spot-check reachability and neighborhoods on a sample.
    let reach = ReachIndex::new(&out.grammar);
    let idx = GrammarIndex::new(&out.grammar);
    let n = derived.num_nodes() as u64;
    for i in 0..50u64 {
        let s = (i * 6151) % n;
        let t = (i * 911 + 5) % n;
        assert_eq!(
            reach.reachable(s, t),
            traverse::reachable(&derived, s as u32, t as u32),
            "reach({s},{t})"
        );
        let mut want: Vec<u64> = derived.out_neighbors(s as u32).map(u64::from).collect();
        want.sort_unstable();
        want.dedup();
        assert_eq!(idx.out_neighbors(s), want, "out({s})");
    }
}

#[test]
fn node_map_relocates_node_data() {
    // The ψ′ use case: per-node data must be recoverable after compression.
    let g = rdf::property_graph(500, 9, 4, 100, 9);
    let data: Vec<String> = (0..g.node_bound()).map(|v| format!("uri:{v}")).collect();
    let out = compress(&g, &GRePairConfig::default());
    let derived = out.grammar.derive();
    // Every derived node's data is data[node_map[k]]; check edges carry the
    // same endpoint data as the original.
    let derived_pairs: Vec<(String, String)> = derived
        .edges()
        .filter(|e| e.att.len() == 2)
        .map(|e| {
            (
                data[out.node_map[e.att[0] as usize] as usize].clone(),
                data[out.node_map[e.att[1] as usize] as usize].clone(),
            )
        })
        .collect();
    let original_pairs: Vec<(String, String)> = g
        .edges()
        .map(|e| (data[e.att[0] as usize].clone(), data[e.att[1] as usize].clone()))
        .collect();
    let mut a = derived_pairs;
    let mut b = original_pairs;
    a.sort();
    b.sort();
    assert_eq!(a, b);
}

#[test]
fn text_io_pipeline() {
    use graph_grammar_repair::hypergraph::io;
    let g = network::preferential_attachment(300, 3, 17);
    let mut text = String::new();
    for e in g.edges() {
        text.push_str(&format!("{} {}\n", e.att[0], e.att[1]));
    }
    let (parsed, _, dropped) = io::parse_pairs(&text).unwrap();
    assert_eq!(dropped, 0);
    assert_eq!(parsed.num_edges(), g.num_edges());
    full_round_trip(&parsed, &GRePairConfig::default());
}

#[test]
fn all_configs_on_all_families() {
    let graphs = [
        network::erdos_renyi(300, 900, 1),
        rdf::types_star(500, 6, 2),
        version::disjoint_copies(&version::circle_with_diagonal(), 20),
    ];
    for g in &graphs {
        for max_rank in [2, 4, 6] {
            for order in [NodeOrder::Fp, NodeOrder::Bfs, NodeOrder::Natural] {
                let config = GRePairConfig { max_rank, order, ..Default::default() };
                full_round_trip(g, &config);
            }
        }
    }
}

#[test]
fn grepair_on_string_graphs_matches_string_repair() {
    // Conclusion claim: "gRePair over string- and tree-graphs obtains
    // similar compression ratios as the original specialized versions".
    // The string (abc)^512 as a path graph:
    let reps = 512u32;
    let triples = (0..reps).flat_map(|i| {
        let b = 3 * i;
        [(b, 0u32, b + 1), (b + 1, 1, b + 2), (b + 2, 2, b + 3)]
    });
    let (g, _) = Hypergraph::from_simple_edges((3 * reps + 1) as usize, triples);
    let out = compress(&g, &GRePairConfig::default());
    let seq: Vec<u32> = (0..3 * reps).map(|i| i % 3).collect();
    let sg = graph_grammar_repair::baselines::repair_strings::repair(&seq, 3);
    // Both should be logarithmic in the input: O(log n) rules.
    let n_rules = out.grammar.num_nonterminals();
    let s_rules = sg.rules.len();
    assert!(n_rules <= 4 * s_rules + 8, "gRePair {n_rules} vs RePair {s_rules}");
    assert!(s_rules <= 4 * n_rules + 8, "RePair {s_rules} vs gRePair {n_rules}");
    assert!(n_rules < 40, "should be logarithmic, got {n_rules}");
}

#[test]
fn rpq_over_compressed_version_graph() {
    use graph_grammar_repair::queries::{rpq, Nfa, Regex, RpqIndex};
    let g = version::disjoint_copies(&version::circle_with_diagonal(), 64);
    let out = compress(&g, &GRePairConfig::default());
    let derived = out.grammar.derive();
    // All edges share label 0; L = (00)* reaches only even distances.
    let nfa = Nfa::from_regex(&Regex::star(Regex::cat(vec![
        Regex::label(0),
        Regex::label(0),
    ])));
    let idx = RpqIndex::new(&out.grammar, nfa.clone());
    let n = derived.num_nodes() as u64;
    for i in 0..60u64 {
        let s = (i * 257) % n;
        let t = (i * 7919 + 1) % n;
        assert_eq!(
            idx.matches(s, t),
            rpq::rpq_on_graph(&derived, &nfa, s as u32, t as u32),
            "rpq({s},{t})"
        );
    }
}

#[test]
fn compression_is_deterministic() {
    let g = network::co_authorship(400, 300, 5, 23);
    let a = compress(&g, &GRePairConfig::default());
    let b = compress(&g, &GRePairConfig::default());
    assert_eq!(a.grammar.size(), b.grammar.size());
    assert_eq!(a.node_map, b.node_map);
    let ea = encode(&a.grammar);
    let eb = encode(&b.grammar);
    assert_eq!(ea.bytes, eb.bytes);
}
